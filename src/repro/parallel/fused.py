"""Fused SPMD campaign super-steps (DESIGN.md §16).

The classic REWL advance phase treats every window team as an opaque
stepping object: W windows × K walkers mean W independent ``propose_many``
/ ``delta_energy_*_many`` dispatches per super-step.  This module fuses the
whole campaign into one SPMD array program:

- :class:`FusedCampaignState` — all W·K walker configurations live as rows
  of a single ``(W·K, n_sites)`` array, with per-window ``ln g`` /
  histogram planes and per-window ``ln f`` scalars packed alongside;
- :class:`FusedTeam` — a :class:`~repro.sampling.batched.
  BatchedWangLandauSampler` whose arrays are *views* into the campaign
  state and whose scalars live in shared blocks, so the existing commit
  logic (and every driver phase that reads team state) works unchanged;
- :func:`fused_advance` — the fused super-step: each window's proposal
  draws its move fields from its own RNG stream
  (:meth:`~repro.proposals.base.Proposal.draw_fields`), the fields are
  stacked, and **one** ``delta_energy_*_many`` gather prices every
  window's moves before the per-team masked commits
  (:meth:`~repro.sampling.batched.BatchedWangLandauSampler.commit_batch`);
- :class:`FusedEngine` — in-process driver hook (``backend="fused"``);
- :class:`ShmEngine` — multiprocess driver hook (``backend="shm"``): the
  campaign state is allocated in :mod:`multiprocessing.shared_memory`
  segments (:class:`~repro.parallel.comm.ShmWorld`), worker ranks attach
  zero-copy and step their windows' rows in place, and the controller
  drains per-rank completions *without a barrier* — replica-exchange pairs
  are processed (in strict schedule order, preserving the exchange RNG
  stream) as soon as both endpoints land, while other ranks keep stepping.

Bit-identity: the draw/price split consumes each window's RNG streams in
exactly the per-window order (fields, then acceptance noise inside
``commit_batch``), the ``*_many`` kernels reduce row-wise, and the
exchange stream is consumed in pair-schedule order — so ``backend="fused"``
and ``backend="shm"`` reproduce the per-window batched campaign bit for
bit (pinned by ``tests/test_fused_campaign.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import fields as dataclass_fields, replace

import numpy as np

from repro.faults import faults_from_env
from repro.lattice.configuration import CONFIG_DTYPE
from repro.obs.events import worker_log
from repro.parallel.comm import SharedMemoryCommunicator, ShmWorld
from repro.proposals.base import assemble_move
from repro.sampling.batched import BatchedWangLandauSampler
from repro.sampling.wang_landau import WalkerCounters
from repro.util.rng import as_generator

__all__ = [
    "FusedCampaignState",
    "FusedTeam",
    "FusedEngine",
    "ShmEngine",
    "fused_advance",
]

#: Message-wait slice for the controller drain loop: short enough that a
#: dead worker is noticed promptly, long enough not to busy-spin.
_POLL_S = 1.0

#: Worker-side retry budget for injected faults (mirrors the executors'
#: default under chaos).
_WORKER_RETRIES = 8


# --------------------------------------------------------------------------
# campaign state
# --------------------------------------------------------------------------


class FusedCampaignState:
    """All W windows × K walkers as one set of flat campaign arrays.

    ========== ==================== =========================================
    array      shape                contents
    ========== ==================== =========================================
    configs    (W·K, n_sites)       walker configurations, window-major rows
    energies   (W·K,)               current energies
    bins       (W·K,)               current window-grid bin per walker
    ln_g       (W, width)           per-window shared ln g estimate
    histogram  (W, width)           per-window visit histogram
    visited    (W, width)           per-window visited mask
    slot_steps (W, K)               per-slot step counters
    slot_accepted (W, K)            per-slot accept counters
    ln_f       (W,)                 per-window modification factor
    counts     (W, 3)               n_steps / n_accepted / steps-this-iter
    ========== ==================== =========================================

    ``make_windows`` gives every window the same integer bin width, which is
    what makes the rectangular ``(W, width)`` planes possible.  Allocation
    is pluggable: plain ``np.zeros`` for the in-process fused engine, or
    :meth:`~repro.parallel.comm.ShmWorld.alloc_array` for named
    shared-memory segments that worker ranks map zero-copy.
    """

    FIELDS = ("configs", "energies", "bins", "ln_g", "histogram", "visited",
              "slot_steps", "slot_accepted", "ln_f", "counts")

    def __init__(self, n_windows: int, walkers_per_window: int, arrays: dict):
        self.n_windows = int(n_windows)
        self.walkers_per_window = int(walkers_per_window)
        for name in self.FIELDS:
            setattr(self, name, arrays[name])

    @classmethod
    def specs(cls, n_windows: int, walkers_per_window: int, n_sites: int,
              width: int, config_dtype=CONFIG_DTYPE) -> dict:
        """``{name: (shape, dtype)}`` for every campaign array."""
        w, k = int(n_windows), int(walkers_per_window)
        rows = w * k
        return {
            "configs": ((rows, int(n_sites)), np.dtype(config_dtype)),
            "energies": ((rows,), np.dtype(np.float64)),
            "bins": ((rows,), np.dtype(np.int64)),
            "ln_g": ((w, int(width)), np.dtype(np.float64)),
            "histogram": ((w, int(width)), np.dtype(np.int64)),
            "visited": ((w, int(width)), np.dtype(np.bool_)),
            "slot_steps": ((w, k), np.dtype(np.int64)),
            "slot_accepted": ((w, k), np.dtype(np.int64)),
            "ln_f": ((w,), np.dtype(np.float64)),
            "counts": ((w, 3), np.dtype(np.int64)),
        }

    @classmethod
    def allocate(cls, *, n_windows: int, walkers_per_window: int,
                 n_sites: int, width: int, config_dtype=CONFIG_DTYPE,
                 alloc=None) -> "FusedCampaignState":
        """Allocate fresh campaign arrays (``alloc=None`` → host memory)."""
        if alloc is None:
            def alloc(name, shape, dtype):
                return np.zeros(shape, dtype=dtype)
        arrays = {
            name: alloc(name, shape, dtype)
            for name, (shape, dtype) in
            cls.specs(n_windows, walkers_per_window, n_sites, width,
                      config_dtype).items()
        }
        return cls(n_windows, walkers_per_window, arrays)

    @classmethod
    def attach(cls, comm: SharedMemoryCommunicator, n_windows: int,
               walkers_per_window: int) -> "FusedCampaignState":
        """Map the campaign arrays of an :class:`ShmWorld` (worker side)."""
        arrays = {name: comm.shared_array(name) for name in cls.FIELDS}
        return cls(n_windows, walkers_per_window, arrays)

    def rows(self, w: int) -> slice:
        """Row slice of window ``w``'s walkers in the flat arrays."""
        k = self.walkers_per_window
        return slice(w * k, (w + 1) * k)


class _FusedRef:
    """A team's binding into the campaign state: (state, window index)."""

    __slots__ = ("state", "w")

    def __init__(self, state: FusedCampaignState, w: int):
        self.state = state
        self.w = w


# --------------------------------------------------------------------------
# view-backed team
# --------------------------------------------------------------------------


class FusedTeam(BatchedWangLandauSampler):
    """A batched window team whose storage lives in a campaign state.

    Array attributes (``configs``, ``ln_g``, …) are plain instance-dict
    entries rebound to views of the fused arrays — every in-place update in
    :meth:`~repro.sampling.batched.BatchedWangLandauSampler.commit_batch`
    lands directly in campaign (possibly shared) memory.  Scalar walker
    state (``ln_f``, ``n_steps``, ``n_accepted``, the per-iteration step
    counter) is promoted to properties over the state's scalar blocks, so a
    controller halving ``ln_f`` is immediately visible to the worker rank
    stepping that window.

    Pickling (:meth:`__getstate__`) materializes every view into an owned
    copy and drops the binding: supervisor snapshots and checkpoints stay
    plain data, and an unpickled team behaves as an ordinary batched
    sampler until :meth:`adopt` rebinds it (the driver's ``_retag_window``
    hook does this after any rollback/restore).
    """

    _ARRAYS = ("configs", "energies", "bins", "ln_g", "histogram", "visited",
               "slot_steps", "slot_accepted")
    _SCALARS = ("ln_f", "n_steps", "n_accepted", "_steps_this_iteration")

    # -- shared scalars ----------------------------------------------------

    @property
    def ln_f(self) -> float:
        ref = self.__dict__.get("_fused")
        if ref is None:
            return self.__dict__["ln_f"]
        return float(ref.state.ln_f[ref.w])

    @ln_f.setter
    def ln_f(self, value) -> None:
        ref = self.__dict__.get("_fused")
        if ref is None:
            self.__dict__["ln_f"] = value
        else:
            ref.state.ln_f[ref.w] = float(value)

    @property
    def n_steps(self) -> int:
        ref = self.__dict__.get("_fused")
        if ref is None:
            return self.__dict__["n_steps"]
        return int(ref.state.counts[ref.w, 0])

    @n_steps.setter
    def n_steps(self, value) -> None:
        ref = self.__dict__.get("_fused")
        if ref is None:
            self.__dict__["n_steps"] = value
        else:
            ref.state.counts[ref.w, 0] = int(value)

    @property
    def n_accepted(self) -> int:
        ref = self.__dict__.get("_fused")
        if ref is None:
            return self.__dict__["n_accepted"]
        return int(ref.state.counts[ref.w, 1])

    @n_accepted.setter
    def n_accepted(self, value) -> None:
        ref = self.__dict__.get("_fused")
        if ref is None:
            self.__dict__["n_accepted"] = value
        else:
            ref.state.counts[ref.w, 1] = int(value)

    @property
    def _steps_this_iteration(self) -> int:
        ref = self.__dict__.get("_fused")
        if ref is None:
            return self.__dict__["_steps_this_iteration"]
        return int(ref.state.counts[ref.w, 2])

    @_steps_this_iteration.setter
    def _steps_this_iteration(self, value) -> None:
        ref = self.__dict__.get("_fused")
        if ref is None:
            self.__dict__["_steps_this_iteration"] = value
        else:
            ref.state.counts[ref.w, 2] = int(value)

    # -- binding -----------------------------------------------------------

    @classmethod
    def adopt(cls, team, state: FusedCampaignState, w: int,
              push: bool = True):
        """Bind ``team``'s storage into ``state``'s window-``w`` slots.

        ``push=True`` (controller side) writes the team's current values
        into the campaign arrays first — the authoritative state moves into
        the fused storage.  ``push=False`` (worker attach, and rebinds
        where the shared arrays already hold the truth) only installs the
        views, discarding whatever the team object held.  Idempotent: a
        team that is already bound may be adopted again after a rollback
        replaced its arrays.
        """
        if push:
            scalars = {n: getattr(team, n) for n in cls._SCALARS}
            arrays = {n: np.asarray(getattr(team, n)) for n in cls._ARRAYS}
        if team.__class__ is not cls:
            team.__class__ = cls
        d = team.__dict__
        for n in cls._SCALARS:
            d.pop(n, None)
        d["_fused"] = _FusedRef(state, w)
        rows = state.rows(w)
        if push:
            state.configs[rows] = arrays["configs"]
            state.energies[rows] = arrays["energies"]
            state.bins[rows] = arrays["bins"]
            state.ln_g[w] = arrays["ln_g"]
            state.histogram[w] = arrays["histogram"]
            state.visited[w] = arrays["visited"]
            state.slot_steps[w] = arrays["slot_steps"]
            state.slot_accepted[w] = arrays["slot_accepted"]
            for n, v in scalars.items():
                setattr(team, n, v)  # through the property → shared block
        d["configs"] = state.configs[rows]
        d["energies"] = state.energies[rows]
        d["bins"] = state.bins[rows]
        d["ln_g"] = state.ln_g[w]
        d["histogram"] = state.histogram[w]
        d["visited"] = state.visited[w]
        d["slot_steps"] = state.slot_steps[w]
        d["slot_accepted"] = state.slot_accepted[w]
        return team

    @classmethod
    def detach(cls, team) -> None:
        """Un-bind: copy shared state into owned arrays/scalars.

        Called before the shared segments are unlinked so the controller's
        teams (and anything holding them, e.g. a result built later) never
        dangle into freed memory.
        """
        ref = team.__dict__.pop("_fused", None)
        if ref is None:
            return
        d = team.__dict__
        for n in cls._ARRAYS:
            d[n] = np.array(d[n], copy=True)
        d["ln_f"] = float(ref.state.ln_f[ref.w])
        d["n_steps"] = int(ref.state.counts[ref.w, 0])
        d["n_accepted"] = int(ref.state.counts[ref.w, 1])
        d["_steps_this_iteration"] = int(ref.state.counts[ref.w, 2])

    @classmethod
    def attach(cls, *, state: FusedCampaignState, w: int, hamiltonian,
               proposal, grid, wl_cfg, rng=None) -> "FusedTeam":
        """Construct a worker-side team over existing shared state.

        Unlike ``__init__``, nothing is computed or written: the shared
        arrays already hold the controller's authoritative walker state,
        and the RNG stream arrives with every advance command.
        """
        team = object.__new__(cls)
        cfg = replace(wl_cfg, batch_size=state.walkers_per_window)
        d = team.__dict__
        d["cfg"] = cfg
        d["hamiltonian"] = hamiltonian
        d["proposal"] = proposal
        d["grid"] = grid
        d["rng"] = as_generator(rng)
        d["ln_f_final"] = float(cfg.ln_f_final)
        d["flatness"] = float(cfg.flatness)
        d["schedule"] = cfg.schedule
        d["check_interval"] = (
            max(1000, 100 * grid.n_bins)
            if cfg.check_interval is None
            else int(cfg.check_interval)
        )
        d["n_iterations"] = 0
        d["iteration_steps"] = []
        d["counters"] = WalkerCounters()
        d["profiler"] = None
        cls.adopt(team, state, w, push=False)
        return team

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        d = {k: v for k, v in self.__dict__.items() if k != "_fused"}
        for n in self._ARRAYS:
            d[n] = np.array(getattr(self, n), copy=True)
        for n in self._SCALARS:
            d[n] = getattr(self, n)
        return d

    def __setstate__(self, state):
        self.__dict__.update(state)


# --------------------------------------------------------------------------
# the fused super-step
# --------------------------------------------------------------------------


def _gather_configs(teams, windows, idxs, state):
    """Stacked configuration rows for the windows in ``idxs``.

    When every team participates and their windows are consecutive, the
    campaign array itself is sliced — the one-gather fast path with no
    copies; otherwise rows are concatenated (still a single kernel call).
    """
    if len(idxs) == 1:
        return teams[idxs[0]].configs
    if state is not None:
        ws = [windows[i] for i in idxs]
        if ws[-1] - ws[0] + 1 == len(ws):
            k = state.walkers_per_window
            return state.configs[ws[0] * k:(ws[-1] + 1) * k]
    return np.concatenate([teams[i].configs for i in idxs], axis=0)


def fused_advance(teams, windows, n_steps, hamiltonian, profiler=None,
                  state=None) -> None:
    """``n_steps`` fused super-steps across several window teams.

    Per super-step: every team's proposal draws its move fields from its
    own RNG stream (``draw_fields``), same-kind fields are stacked, and one
    ``delta_energy_*_many`` gather per kind prices the whole batch (timed
    under ``rewl.fused_gather``); each team then commits its rows against
    its own ln g with its own acceptance noise.  Teams whose proposal does
    not support the draw/price split (``draw_fields`` → None, e.g. mixture
    proposals) fall back to their monolithic ``step_batch`` — consuming the
    identical RNG stream, since the default ``draw_fields`` draws nothing.
    """
    for _ in range(int(n_steps)):
        fields = [
            t.proposal.draw_fields(t.configs, t.hamiltonian, t.rng)
            for t in teams
        ]
        by_kind: dict[str, list[int]] = {}
        for i, f in enumerate(fields):
            if f is not None:
                by_kind.setdefault(f.kind, []).append(i)
        deltas: list = [None] * len(teams)
        for kind, idxs in by_kind.items():
            cfgs = _gather_configs(teams, windows, idxs, state)
            if len(idxs) == 1:
                a, b = fields[idxs[0]].a, fields[idxs[0]].b
            else:
                a = np.concatenate([fields[i].a for i in idxs])
                b = np.concatenate([fields[i].b for i in idxs])
            t0 = (
                profiler.start("rewl.fused_gather")
                if profiler is not None else None
            )
            if kind == "swap":
                d = hamiltonian.delta_energy_swap_many(cfgs, a, b)
            else:
                d = hamiltonian.delta_energy_flip_many(cfgs, a, b)
            if profiler is not None:
                profiler.stop("rewl.fused_gather", t0)
            off = 0
            for i in idxs:
                n = fields[i].a.shape[0]
                deltas[i] = d[off:off + n]
                off += n
        for i, team in enumerate(teams):
            f = fields[i]
            if f is None:
                team.step_batch()
            else:
                team.commit_batch(assemble_move(f, team.configs, deltas[i]))


# --------------------------------------------------------------------------
# in-process engine (backend="fused")
# --------------------------------------------------------------------------


def _campaign_width(windows) -> int:
    widths = {spec.grid.n_bins for spec in windows}
    if len(widths) != 1:
        raise ValueError(
            f"fused campaign needs a common window width, got {sorted(widths)}"
        )
    return widths.pop()


class FusedEngine:
    """In-process fused SPMD engine: one gather serves every window.

    Plugged in by ``REWLConfig(backend="fused")``.  ``overlapped`` is False
    — the driver's classic round structure (advance barrier, then exchange,
    then sync) is kept; only the advance phase's *internals* are fused.
    """

    overlapped = False

    def __init__(self, driver):
        k = driver.cfg.walkers_per_window
        first = driver.walkers[0][0].configs
        self.state = FusedCampaignState.allocate(
            n_windows=len(driver.windows), walkers_per_window=k,
            n_sites=first.shape[1], width=_campaign_width(driver.windows),
            config_dtype=first.dtype,
        )

    def bind_window(self, driver, w: int) -> None:
        """(Re-)bind window ``w``'s team into the campaign arrays."""
        FusedTeam.adopt(driver.walkers[w][0], self.state, w, push=True)

    def advance(self, driver, active, n_steps: int) -> None:
        teams = [driver.walkers[w][0] for w in active]
        fused_advance(
            teams, list(active), n_steps, driver.hamiltonian,
            profiler=driver.profiler, state=self.state,
        )

    def close(self, driver) -> None:
        for team in (t[0] for t in driver.walkers):
            FusedTeam.detach(team)


# --------------------------------------------------------------------------
# shared-memory engine (backend="shm")
# --------------------------------------------------------------------------


def _merge_counters(dst: WalkerCounters, delta: WalkerCounters) -> None:
    for f in dataclass_fields(dst):
        setattr(dst, f.name, getattr(dst, f.name) + getattr(delta, f.name))


def _shm_campaign_worker(handle, rank, blob):
    """Worker-rank main: attach the campaign state, serve advance commands.

    Stateless between commands by construction — walker arrays live in the
    shared segments and the RNG stream arrives with every command — so a
    crashed rank can be respawned with the same blob and simply resume.
    Stale commands left queued by a crashed predecessor are fenced off by
    ``min_epoch``.
    """
    from repro.obs.profile import SectionProfiler
    from repro.parallel.rewl import _advance_walker

    comm = SharedMemoryCommunicator(world=handle, rank=rank)
    try:
        state = FusedCampaignState.attach(
            comm, blob["n_windows"], blob["walkers_per_window"]
        )
        injector = faults_from_env()
        ham = blob["hamiltonian"]
        teams = {}
        for spec in blob["windows"]:
            team = FusedTeam.attach(
                state=state, w=spec["w"], hamiltonian=ham,
                proposal=spec["proposal"], grid=spec["grid"],
                wl_cfg=blob["wl_cfg"],
            )
            team.obs_tag = (spec["w"], None)
            if blob["profile_every"]:
                team.enable_profiling(
                    SectionProfiler(sample_every=blob["profile_every"])
                )
            teams[spec["w"]] = team
        min_epoch = blob.get("min_epoch", 0)
        max_retries = _WORKER_RETRIES if injector is not None else 0
        log = worker_log()
        while True:
            msg = comm.recv(source=0)
            if msg[0] == "stop":
                break
            _, epoch, n_steps, jobs = msg
            if epoch < min_epoch:
                continue  # predecessor's command; controller rolled back
            t0 = time.perf_counter() if log.enabled else 0.0
            report = {}
            for w, rng_state in jobs:
                team = teams[w]
                team.rng.bit_generator.state = rng_state
                team.counters = WalkerCounters()
            if injector is None:
                ws = [w for w, _ in jobs]
                live = [teams[w] for w in ws]
                prof = live[0].profiler
                try:
                    fused_advance(live, ws, n_steps, ham, profiler=prof,
                                  state=state)
                except Exception as exc:  # pragma: no cover - defensive
                    err = f"{type(exc).__name__}: {exc}"
                    report = {w: {"ok": False, "error": err} for w in ws}
            else:
                # Chaos mode steps windows individually so fault targeting
                # (and the retry-from-same-state contract: faults fire at
                # attempt entry) stays per window.  RNG draws are identical
                # either way — window streams are independent.
                for w, _ in jobs:
                    team, attempt = teams[w], 0
                    while True:
                        fn = injector.wrap(_advance_walker, key=w,
                                           attempt=attempt)
                        try:
                            fn(team, n_steps)
                            break
                        except Exception as exc:
                            attempt += 1
                            if attempt > max_retries:
                                report[w] = {
                                    "ok": False,
                                    "error": f"{type(exc).__name__}: {exc}",
                                }
                                break
            for w, _ in jobs:
                if w not in report:
                    team = teams[w]
                    report[w] = {
                        "ok": True,
                        "counters": team.counters,
                        "rng": team.rng.bit_generator.state,
                        "profile": team.profiler,
                    }
            if log.enabled:
                log.emit(
                    "worker_span", name="advance",
                    dur_s=time.perf_counter() - t0, window=None, walker=None,
                    steps=n_steps * state.walkers_per_window * len(jobs),
                )
            comm.send(("done", epoch, rank, report), dest=0)
    finally:
        comm.close()


class ShmEngine:
    """Zero-copy multiprocess campaign engine (``backend="shm"``).

    The controller (rank 0) owns the round structure; worker ranks own
    static window partitions and step them in place in the shared campaign
    arrays.  ``overlapped`` is True: the controller drains per-rank
    completions as they land — guarding, snapshotting, exchanging (strict
    pair-schedule order, so the exchange RNG stream is untouched) and
    syncing each window the moment it is ready, while slower ranks keep
    stepping.  Exchange proposals therefore never barrier the stepping.
    """

    overlapped = True

    def __init__(self, driver, n_ranks: int | None = None):
        n_windows = len(driver.windows)
        k = driver.cfg.walkers_per_window
        if n_ranks is None:
            n_ranks = min(n_windows, max(1, (os.cpu_count() or 2) - 1))
        self.n_workers = max(1, min(int(n_ranks), n_windows))
        self.world = ShmWorld(self.n_workers + 1)
        first = driver.walkers[0][0].configs
        self.state = FusedCampaignState.allocate(
            n_windows=n_windows, walkers_per_window=k,
            n_sites=first.shape[1], width=_campaign_width(driver.windows),
            config_dtype=first.dtype, alloc=self.world.alloc_array,
        )
        self.rank_of = [1 + (w % self.n_workers) for w in range(n_windows)]
        self.comm = SharedMemoryCommunicator(world=self.world.handle(), rank=0)
        wl_cfg = driver.walkers[0][0].cfg
        profile_every = (
            driver.profiler.sample_every if driver.profiler is not None else 0
        )
        self._blobs = {}
        for rank in range(1, self.n_workers + 1):
            wins = [
                {
                    "w": w,
                    "proposal": driver.proposal_factory(),
                    "grid": driver.windows[w].grid,
                }
                for w in range(n_windows) if self.rank_of[w] == rank
            ]
            self._blobs[rank] = {
                "n_windows": n_windows, "walkers_per_window": k,
                "hamiltonian": driver.hamiltonian, "wl_cfg": wl_cfg,
                "windows": wins, "profile_every": profile_every,
                "min_epoch": 0,
            }
        self._proc: dict[int, object] = {}
        self._epoch = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------ lifecycle

    def bind_window(self, driver, w: int) -> None:
        """(Re-)bind window ``w``'s team into the shared campaign arrays."""
        FusedTeam.adopt(driver.walkers[w][0], self.state, w, push=True)

    def _spawn(self, rank: int, blob: dict) -> None:
        p = self.world.ctx.Process(
            target=_shm_campaign_worker,
            args=(self.world.handle(), rank, blob), daemon=True,
        )
        p.start()
        self.world.procs.append(p)
        self._proc[rank] = p

    def start(self) -> None:
        """Spawn the worker ranks (lazy: first ``run_round`` call)."""
        if self._started:
            return
        for rank, blob in self._blobs.items():
            self._spawn(rank, blob)
        self._started = True

    def close(self, driver=None) -> None:
        """Stop workers, detach the driver's teams, unlink the segments."""
        if self._closed:
            return
        self._closed = True
        try:
            if driver is not None:
                for team in (t[0] for t in driver.walkers):
                    FusedTeam.detach(team)
            if self._started:
                for rank, proc in self._proc.items():
                    if proc.is_alive():
                        try:
                            self.comm.send(("stop",), dest=rank)
                        except Exception:
                            pass
                for proc in self._proc.values():
                    proc.join(timeout=2.0)
        finally:
            self.comm.close()
            self.world.close()

    # ------------------------------------------------------------ the round

    def run_round(self, driver) -> None:
        """One overlapped advance→guard→exchange→sync round.

        The exchange schedule is fixed at round start; a window quarantined
        *mid-round* has its pairs skipped without RNG draws (the re-paired
        surviving topology starts next round — see DESIGN.md §16), so clean
        rounds are bit-identical to the barriered phases.
        """
        self.start()
        cfg = driver.cfg
        sup = driver.supervisor
        prof = driver.profiler
        n_windows = len(driver.windows)
        active = [
            w for w in range(n_windows)
            if not driver.window_converged[w]
            and not driver.window_quarantined[w]
        ]
        self._epoch += 1
        epoch = self._epoch
        jobs_by_rank: dict[int, list] = {}
        for w in active:
            team = driver.walkers[w][0]
            jobs_by_rank.setdefault(self.rank_of[w], []).append(
                (w, team.rng.bit_generator.state)
            )
        # One batched team is one advance task: metric parity with the
        # classic batched path (steps = tasks × interval, super-steps).
        steps = len(active) * cfg.exchange_interval
        t_adv = prof.start_always("rewl.advance") if prof is not None else None
        with driver.obs.span(
            "advance", round=driver.rounds,
            walkers=len(active), steps=steps,
        ):
            for rank, jobs in jobs_by_rank.items():
                self.comm.send(
                    ("advance", epoch, cfg.exchange_interval, jobs), dest=rank
                )
            driver.rounds += 1
            driver.obs.metrics.inc("rewl.rounds")
            driver.obs.metrics.inc("rewl.steps", steps)

            pairs = driver._exchange_pairs()[driver.rounds % 2::2]
            win_pairs: dict[int, list[int]] = {w: [] for w in range(n_windows)}
            for i, (left, right) in enumerate(pairs):
                win_pairs[left].append(i)
                win_pairs[right].append(i)
            pair_done = [False] * len(pairs)
            pending = set(active)
            ready = set(range(n_windows)) - pending
            synced: set[int] = set()
            next_pair = 0

            def settle_pairs():
                # Strict schedule order keeps the shared exchange RNG
                # stream identical to the barriered exchange phase.
                nonlocal next_pair
                while next_pair < len(pairs):
                    left, right = pairs[next_pair]
                    if left not in ready or right not in ready:
                        return
                    te = (
                        prof.start_always("rewl.exchange_round")
                        if prof is not None else None
                    )
                    with driver.obs.span("exchange", round=driver.rounds,
                                         pair=left):
                        driver._exchange_pair_batched(left, right)
                    if prof is not None:
                        prof.stop("rewl.exchange_round", te)
                    pair_done[next_pair] = True
                    next_pair += 1

            def sync_ready():
                for w in active:
                    if (
                        w in ready and w not in synced
                        and all(pair_done[i] for i in win_pairs[w])
                    ):
                        ts = (
                            prof.start_always("rewl.sync")
                            if prof is not None else None
                        )
                        with driver.obs.span("synchronize",
                                             round=driver.rounds, window=w):
                            driver._sync_window(w)
                        if prof is not None:
                            prof.stop("rewl.sync", ts)
                        synced.add(w)

            def window_done(w, payload, rank):
                team = driver.walkers[w][0]
                if payload["ok"]:
                    _merge_counters(team.counters, payload["counters"])
                    team.rng.bit_generator.state = payload["rng"]
                    if payload.get("profile") is not None:
                        team._shm_profiler = payload["profile"]
                    if sup is not None:
                        tg = (
                            prof.start_always("rewl.guard")
                            if prof is not None else None
                        )
                        sup.guard_window(driver, w)
                        if not driver.window_quarantined[w]:
                            sup.snapshot_window(driver, w)
                        if prof is not None:
                            prof.stop("rewl.guard", tg)
                else:
                    exc = RuntimeError(payload["error"])
                    if sup is None:
                        raise RuntimeError(
                            f"window {w} advance failed on shm rank {rank}: "
                            f"{payload['error']}"
                        ) from exc
                    sup.on_window_failure(driver, w, exc)
                ready.add(w)

            while pending:
                try:
                    src, msg = self.comm.recv_any(timeout=_POLL_S)
                except TimeoutError:
                    self._reap_dead_ranks(driver, pending, ready, epoch)
                    settle_pairs()
                    sync_ready()
                    continue
                if msg[0] != "done" or msg[1] != epoch:
                    continue  # stale reply from a respawned predecessor
                _, _, rank, report = msg
                for w in sorted(report):
                    if w in pending:
                        pending.discard(w)
                        window_done(w, report[w], rank)
                settle_pairs()
                sync_ready()
            settle_pairs()
            sync_ready()
            if sup is not None:
                sup.end_guard_round()
        if prof is not None:
            prof.stop("rewl.advance", t_adv)

    def _reap_dead_ranks(self, driver, pending, ready, epoch) -> None:
        """Fail windows whose rank died; respawn the rank for next round."""
        sup = driver.supervisor
        for rank, proc in list(self._proc.items()):
            if proc.is_alive():
                continue
            dead = [w for w in sorted(pending) if self.rank_of[w] == rank]
            if not dead:
                continue
            if sup is None:
                raise RuntimeError(
                    f"shm worker rank {rank} died while advancing windows "
                    f"{dead} (exitcode {proc.exitcode})"
                )
            # Fence the respawned rank past any command the dead one left
            # unconsumed, then hand the lost windows to the supervisor.
            self._spawn(rank, dict(self._blobs[rank], min_epoch=epoch + 1))
            for w in dead:
                pending.discard(w)
                sup.on_window_failure(
                    driver, w,
                    RuntimeError(f"worker rank {rank} died mid-advance"),
                )
                ready.add(w)
