"""Checkpoint/restore for long REWL runs.

Production flat-histogram runs are days long; the paper's framework (like
any HPC application) must survive job-time limits.  A checkpoint captures
every piece of driver state that evolves — walkers (configurations, ln g,
histograms, RNG streams), window convergence flags, exchange statistics, and
the driver's own RNG — so a restored run continues *bit-identically* (tested
in ``tests/test_checkpoint.py``).

The proposal factory and executor are deliberately not serialized (factories
are often closures over live models); the caller reconstructs the driver
with the same arguments and then restores into it.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.parallel.rewl import REWLDriver

__all__ = ["save_checkpoint", "load_checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def save_checkpoint(driver: REWLDriver, path) -> Path:
    """Write the driver's evolving state to ``path`` (pickle format)."""
    path = Path(path)
    state = {
        "version": CHECKPOINT_VERSION,
        "n_windows": len(driver.windows),
        "walkers_per_window": len(driver.walkers[0]),
        "n_sites": driver.hamiltonian.n_sites,
        "grid_n_bins": driver.grid.n_bins,
        "walkers": driver.walkers,
        "window_converged": list(driver.window_converged),
        "exchange_attempts": driver.exchange_attempts,
        "exchange_accepts": driver.exchange_accepts,
        "rounds": driver.rounds,
        "exchange_rng": driver._exchange_rng,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as f:
        pickle.dump(state, f, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_checkpoint(driver: REWLDriver, path) -> REWLDriver:
    """Restore state saved by :func:`save_checkpoint` into ``driver``.

    The driver must have been constructed with a *compatible* setup (same
    window/walker counts, grid size, and system size); mismatches raise
    ``ValueError`` before any state is touched.
    """
    path = Path(path)
    with path.open("rb") as f:
        state = pickle.load(f)
    if state.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {state.get('version')} != {CHECKPOINT_VERSION}"
        )
    checks = [
        ("n_windows", len(driver.windows)),
        ("walkers_per_window", len(driver.walkers[0])),
        ("n_sites", driver.hamiltonian.n_sites),
        ("grid_n_bins", driver.grid.n_bins),
    ]
    for key, current in checks:
        if state[key] != current:
            raise ValueError(
                f"checkpoint mismatch: {key} is {state[key]} in the file but "
                f"{current} in the driver"
            )
    driver.walkers = state["walkers"]
    driver.window_converged = list(state["window_converged"])
    driver.exchange_attempts = state["exchange_attempts"]
    driver.exchange_accepts = state["exchange_accepts"]
    driver.rounds = state["rounds"]
    driver._exchange_rng = state["exchange_rng"]
    return driver
