"""Crash-consistent checkpoint/restore for long REWL runs.

Production flat-histogram runs are days long; the paper's framework (like
any HPC application) must survive job-time limits and node failures.  A
checkpoint captures every piece of driver state that evolves — walkers
(configurations, ln g, histograms, RNG streams), window convergence flags,
exchange statistics, and the driver's own RNG — so a restored run continues
*bit-identically* (tested in ``tests/test_checkpoint.py``).

Crash consistency (format version 2):

- **atomic writes** — the blob is written to a same-directory ``.tmp``
  file, flushed and fsynced, then moved into place with ``os.replace``
  (atomic on POSIX), so a process killed mid-save never leaves a torn file
  at the checkpoint path;
- **integrity check** — the blob is framed ``MAGIC | version | SHA-256 |
  payload``; a flipped bit or truncated tail fails the digest check on load
  with a clear ``ValueError`` instead of unpickling garbage;
- **snapshot rotation** — each save first rotates the existing snapshot to
  ``<name>.prev``, and :func:`load_latest_checkpoint` falls back to it when
  the primary is missing or unreadable;
- **chaos hooks** — checkpoint writes consult the active
  :class:`repro.faults.FaultInjector` (``corrupt`` probability), which can
  flip a payload byte or kill the save between tmp write and rename; both
  paths are recovered by the integrity check + rotation;
- **logical validation** — SHA-256 only proves the bytes are the bytes
  that were written; it cannot catch *bad values written before the
  crash* (a NaN ln g poisoned in memory and then faithfully persisted).
  Restores therefore run the :mod:`repro.resilience` numerical guards
  over every walker before any driver state is touched, and a logically
  corrupt snapshot falls back to ``.prev`` like a torn one.

Legacy version-1 checkpoints (raw pickles) are still readable.

The proposal factory and executor are deliberately not serialized (factories
are often closures over live models); the caller reconstructs the driver
with the same arguments and then restores into it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.faults import FaultInjector, InjectedCrash, faults_from_env

if TYPE_CHECKING:  # avoid a circular import; rewl imports save_checkpoint
    from repro.parallel.rewl import REWLDriver

__all__ = [
    "CHECKPOINT_VERSION",
    "load_checkpoint",
    "load_latest_checkpoint",
    "maybe_resume",
    "previous_checkpoint_path",
    "save_checkpoint",
]

CHECKPOINT_VERSION = 2
_MAGIC = b"REWLCKPT"
_HEADER = struct.Struct("<8sI32s")  # magic, version, sha256(payload)


def previous_checkpoint_path(path) -> Path:
    """Rotation slot holding the snapshot before the latest one."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def save_checkpoint(driver: "REWLDriver", path, keep_previous: bool = True,
                    faults: FaultInjector | None = None) -> Path:
    """Atomically write the driver's evolving state to ``path``.

    The existing snapshot (if any) is rotated to ``<name>.prev`` first when
    ``keep_previous`` is set, so there is always at most one write in flight
    and at least one intact snapshot on disk.
    """
    path = Path(path)
    state = {
        "version": CHECKPOINT_VERSION,
        "n_windows": len(driver.windows),
        "walkers_per_window": len(driver.walkers[0]),
        "n_sites": driver.hamiltonian.n_sites,
        "grid_n_bins": driver.grid.n_bins,
        "walkers": driver.walkers,
        "window_converged": list(driver.window_converged),
        "exchange_attempts": driver.exchange_attempts,
        "exchange_accepts": driver.exchange_accepts,
        "rounds": driver.rounds,
        "exchange_rng": driver._exchange_rng,
        # Convergence-ledger diagnostics ride along so --resume restores
        # them losslessly; None when the ledger is disabled.
        "convergence": (
            driver.convergence.state_dict()
            if getattr(driver, "convergence", None) is not None else None
        ),
        # Quarantine flags + supervisor ledger: a resumed degraded campaign
        # keeps its dispositions (rollback snapshots are re-taken live).
        "window_quarantined": list(getattr(
            driver, "window_quarantined", [False] * len(driver.windows)
        )),
        "resilience": (
            driver.supervisor.state_dict()
            if getattr(driver, "supervisor", None) is not None else None
        ),
    }
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()

    faults = faults if faults is not None else faults_from_env()
    action = faults.decide_checkpoint(driver.rounds) if faults is not None else None
    if action == "corrupt":
        # Simulated storage corruption: the digest is of the *intended*
        # payload, so the flipped byte is caught on load.
        payload = bytearray(payload)
        payload[len(payload) // 2] ^= 0xFF
        payload = bytes(payload)

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as f:
        f.write(_HEADER.pack(_MAGIC, CHECKPOINT_VERSION, digest))
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    if action == "crash":
        # Simulated death between write and publish: the tmp file is
        # abandoned and the previous snapshot at ``path`` stays intact.
        raise InjectedCrash(f"injected crash before checkpoint rename ({path})")
    if keep_previous and path.exists():
        os.replace(path, previous_checkpoint_path(path))
    os.replace(tmp, path)
    driver.obs.metrics.inc("checkpoint.saved")
    if driver.obs.enabled:
        driver.obs.emit("checkpoint_saved", path=str(path), rounds=driver.rounds)
    return path


def _read_state(path: Path) -> dict:
    """Read + verify one checkpoint file; raise ``ValueError`` on any damage."""
    data = path.read_bytes()
    if data[: len(_MAGIC)] == _MAGIC:
        if len(data) < _HEADER.size:
            raise ValueError(f"checkpoint {path} is truncated (incomplete header)")
        _magic, version, digest = _HEADER.unpack_from(data)
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {version} != {CHECKPOINT_VERSION} ({path})"
            )
        payload = data[_HEADER.size:]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError(
                f"checkpoint {path} failed its integrity check "
                f"(truncated or corrupt payload)"
            )
        return pickle.loads(payload)
    # Legacy version-1 checkpoints: a raw pickle with a version field.
    try:
        state = pickle.loads(data)
    except Exception as exc:
        raise ValueError(f"checkpoint {path} is not readable: {exc}") from exc
    if not isinstance(state, dict) or state.get("version") != 1:
        version = state.get("version") if isinstance(state, dict) else None
        raise ValueError(
            f"checkpoint version {version} != {CHECKPOINT_VERSION} ({path})"
        )
    return state


def load_checkpoint(driver: "REWLDriver", path) -> "REWLDriver":
    """Restore state saved by :func:`save_checkpoint` into ``driver``.

    The driver must have been constructed with a *compatible* setup (same
    window/walker counts, grid size, and system size); mismatches — and
    corrupt or truncated files — raise ``ValueError`` before any state is
    touched.
    """
    path = Path(path)
    state = _read_state(path)
    checks = [
        ("n_windows", len(driver.windows)),
        ("walkers_per_window", len(driver.walkers[0])),
        ("n_sites", driver.hamiltonian.n_sites),
        ("grid_n_bins", driver.grid.n_bins),
    ]
    for key, current in checks:
        if state[key] != current:
            raise ValueError(
                f"checkpoint mismatch: {key} is {state[key]} in the file but "
                f"{current} in the driver"
            )
    # Logical validation (the sha256 frame already proved the bytes are
    # what was written — now prove the *values* are sane): every restored
    # walker must pass the numerical guards before the driver is mutated.
    from repro.resilience.guards import check_team

    problems = [
        f"window {w}: {violation}"
        for w, team in enumerate(state["walkers"])
        for violation in check_team(team)
    ]
    if problems:
        raise ValueError(
            f"checkpoint {path} failed logical validation: "
            + "; ".join(problems[:4])
            + (f" (+{len(problems) - 4} more)" if len(problems) > 4 else "")
        )
    n_pairs = len(driver.windows) - 1
    attempts = np.asarray(state["exchange_attempts"])
    accepts = np.asarray(state["exchange_accepts"])
    if attempts.shape[0] != n_pairs:
        if n_pairs == 0 and attempts.shape[0] == 1 and attempts[0] == 0:
            # Legacy single-window files carried one phantom (unused) pair.
            attempts, accepts = attempts[:0], accepts[:0]
        else:
            raise ValueError(
                f"checkpoint mismatch: exchange statistics cover "
                f"{attempts.shape[0]} window pairs but the driver has {n_pairs}"
            )
    driver.walkers = state["walkers"]
    driver.window_converged = list(state["window_converged"])
    driver.exchange_attempts = attempts
    driver.exchange_accepts = accepts
    driver.rounds = state["rounds"]
    driver._exchange_rng = state["exchange_rng"]
    # Walkers from pre-observability checkpoints lack the (window, walker)
    # tag worker-side spans rely on; re-derive it either way.  _retag_window
    # also rebinds the restored teams into a fused engine's campaign arrays.
    for w in range(len(driver.walkers)):
        driver._retag_window(w)
    conv_state = state.get("convergence")
    ledger = getattr(driver, "convergence", None)
    if conv_state is not None and ledger is not None:
        ledger.load_state(conv_state)
    driver.window_quarantined = list(
        state.get("window_quarantined", [False] * len(driver.windows))
    )
    res_state = state.get("resilience")
    supervisor = getattr(driver, "supervisor", None)
    if res_state is not None and supervisor is not None:
        supervisor.load_state_dict(res_state)
    driver.obs.metrics.inc("checkpoint.restored")
    if driver.obs.enabled:
        driver.obs.emit("checkpoint_restored", path=str(path), rounds=driver.rounds)
    return driver


def load_latest_checkpoint(driver: "REWLDriver", path) -> Path:
    """Restore the newest *loadable* snapshot: ``path``, else ``path.prev``.

    Returns the path actually restored.  A damaged primary (torn write on a
    dying node, bit rot) falls back to the rotated previous snapshot with a
    ``checkpoint_fallback`` event; if nothing loads, raises
    ``FileNotFoundError`` listing each candidate's failure.
    """
    path = Path(path)
    candidates = [path, previous_checkpoint_path(path)]
    failures = []
    for candidate in candidates:
        if not candidate.exists():
            failures.append(f"{candidate}: not found")
            continue
        try:
            load_checkpoint(driver, candidate)
        except ValueError as exc:
            failures.append(f"{candidate}: {exc}")
            continue
        if candidate != path and driver.obs.enabled:
            driver.obs.emit("checkpoint_fallback", path=str(candidate),
                            primary=str(path),
                            reason=failures[0] if failures else "")
        return candidate
    raise FileNotFoundError(
        "no loadable checkpoint: " + "; ".join(failures)
    )


def maybe_resume(driver: "REWLDriver", path) -> bool:
    """Best-effort auto-resume: restore the latest good snapshot if one exists.

    Returns True when the driver was restored.  Unlike
    :func:`load_latest_checkpoint`, a completely unusable checkpoint set
    (all candidates damaged) emits a ``checkpoint_resume_failed`` event and
    returns False — the campaign restarts from scratch rather than dying.
    """
    path = Path(path)
    if not path.exists() and not previous_checkpoint_path(path).exists():
        return False
    try:
        load_latest_checkpoint(driver, path)
        return True
    except (FileNotFoundError, ValueError) as exc:
        if driver.obs.enabled:
            driver.obs.emit("checkpoint_resume_failed", path=str(path),
                            error=f"{type(exc).__name__}: {exc}")
        return False
