"""Energy-window decomposition for replica-exchange Wang–Landau.

The global energy grid is split into ``n_windows`` contiguous bin ranges
with a fractional overlap between neighbors.  Overlaps serve two purposes:
replica exchanges are only possible when both walkers sit in the shared
bins, and DoS stitching matches the pieces over the shared bins.

Invariants (property-tested):

- windows cover every global bin,
- each window has at least 2 bins,
- adjacent windows share at least 1 bin,
- window bin ranges are monotonically increasing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sampling.binning import EnergyGrid
from repro.util.validation import check_in_range, check_integer

__all__ = ["WindowSpec", "make_windows", "surviving_pairs"]


@dataclass(frozen=True)
class WindowSpec:
    """One REWL energy window.

    Attributes
    ----------
    index : int
        Window position (0 = lowest energies).
    lo_bin, hi_bin : int
        Inclusive global-bin range.
    grid : EnergyGrid
        The window's own grid (a bin-aligned subgrid of the global grid).
    """

    index: int
    lo_bin: int
    hi_bin: int
    grid: EnergyGrid

    @property
    def n_bins(self) -> int:
        return self.hi_bin - self.lo_bin + 1

    def overlap_bins(self, other: "WindowSpec") -> tuple[int, int] | None:
        """Global-bin range shared with ``other`` (or None)."""
        lo = max(self.lo_bin, other.lo_bin)
        hi = min(self.hi_bin, other.hi_bin)
        return (lo, hi) if lo <= hi else None


def make_windows(grid: EnergyGrid, n_windows: int, overlap: float = 0.5) -> list[WindowSpec]:
    """Cut ``grid`` into overlapping windows.

    Parameters
    ----------
    grid : EnergyGrid
        The global grid.
    n_windows : int
        Number of windows (1 = no decomposition).
    overlap : float
        Fraction of each window shared with its successor, in [0.1, 0.9]
        (the REWL literature default is 0.75 for diffusion, 0.5 is a good
        cost compromise; we default to 0.5).

    The construction follows the standard REWL recipe: a common integer
    window width ``w ≈ n_bins / (1 + (n_windows − 1)(1 − overlap))`` with
    window starts spread evenly over ``[0, n_bins − w]``.  The width is
    clamped into the band where the invariants are *provably* satisfiable:

    - strict monotonicity needs one free bin per extra window,
      ``w ≤ n_bins − n_windows + 1``;
    - ≥ 1 bin of overlap needs the strides to fit inside the windows,
      ``n_windows·w ≥ n_bins + n_windows − 1``;

    and the start positions are projected into that feasible band by a
    forward/backward pass (both passes preserve steps in ``[1, w − 1]``).
    """
    n_windows = check_integer("n_windows", n_windows, minimum=1)
    if n_windows == 1:
        return [WindowSpec(0, 0, grid.n_bins - 1, grid)]
    check_in_range("overlap", overlap, 0.1, 0.9)
    n_bins = grid.n_bins
    if n_bins < 2 * n_windows:
        raise ValueError(
            f"{n_bins} bins cannot host {n_windows} windows of >= 2 bins"
        )
    width = int(round(n_bins / (1.0 + (n_windows - 1) * (1.0 - overlap))))
    width_min = max(2, -(-(n_bins + n_windows - 1) // n_windows))  # ceil div
    width_max = n_bins - n_windows + 1
    width = max(width_min, min(width, width_max))

    span = n_bins - width
    los = [int(round(k * span / (n_windows - 1))) for k in range(n_windows)]
    # Forward pass: strictly increasing starts with >= 1 bin of overlap.
    for k in range(1, n_windows):
        los[k] = max(los[k], los[k - 1] + 1)
        los[k] = min(los[k], los[k - 1] + width - 1)
    # Backward pass: pin the last window to the top of the grid and pull
    # earlier starts into the feasible band relative to their successor.
    los[-1] = span
    for k in range(n_windows - 2, 0, -1):
        los[k] = max(los[k], los[k + 1] - (width - 1))
        los[k] = min(los[k], los[k + 1] - 1)
    los[0] = 0

    out = [
        WindowSpec(k, lo, lo + width - 1, grid.subgrid(lo, lo + width - 1))
        for k, lo in enumerate(los)
    ]
    _validate(out, n_bins)
    return out


def surviving_pairs(
    windows: list[WindowSpec], alive: list[bool]
) -> list[tuple[int, int]]:
    """Exchange pair schedule over the non-quarantined windows.

    When every window is alive this is exactly the adjacent-neighbor
    schedule ``[(0, 1), (1, 2), ...]``.  When a window is quarantined its
    neighbors are re-paired *around the hole* — but only if their specs
    still share at least one bin (with generous overlaps, e.g. 0.6+, the
    next-nearest windows usually do); pairs with no shared bins are dropped
    because the REWL acceptance rule needs both energies inside both
    windows.  A dropped pair splits the replica-diffusion path — recorded
    by the campaign supervisor as a topology gap, mirrored by a stitching
    segment boundary.
    """
    if len(alive) != len(windows):
        raise ValueError(
            f"alive has {len(alive)} entries for {len(windows)} windows"
        )
    live = [w for w, ok in enumerate(alive) if ok]
    return [
        (a, b)
        for a, b in zip(live, live[1:])
        if windows[a].overlap_bins(windows[b]) is not None
    ]


def _validate(windows: list[WindowSpec], n_bins: int) -> None:
    covered = np.zeros(n_bins, dtype=bool)
    for w in windows:
        if w.n_bins < 2:
            raise ValueError(f"window {w.index} has fewer than 2 bins")
        covered[w.lo_bin : w.hi_bin + 1] = True
    if not covered.all():
        missing = np.nonzero(~covered)[0]
        raise ValueError(f"windows leave global bins uncovered: {missing[:10]}")
    for a, b in zip(windows, windows[1:]):
        if b.lo_bin <= a.lo_bin or b.hi_bin <= a.hi_bin:
            raise ValueError(f"windows {a.index}/{b.index} are not monotone")
        if a.overlap_bins(b) is None:
            raise ValueError(f"windows {a.index}/{b.index} do not overlap")
