"""Replica-exchange Wang–Landau (REWL) driver.

The parallel backbone of DeepThermo: the global energy range is cut into
overlapping windows (:mod:`repro.parallel.windows`), each window is sampled
by a team of independent Wang-Landau walkers, and the driver alternates

1. **advance** — every unconverged walker runs ``exchange_interval`` WL
   steps (parallelized by the executor; walker RNG state travels with the
   walker, so serial and multiprocess runs are bit-identical),
2. **exchange** — walkers in adjacent windows swap configurations with the
   exact REWL acceptance rule
   ``ln u < [ln g_A(E_A) − ln g_A(E_B)] + [ln g_B(E_B) − ln g_B(E_A)]``,
   possible only when both energies lie in both windows (the overlap),
3. **synchronize** — when *all* walkers of a window are flat, their ln g
   estimates are merged (bin-wise mean over walkers that visited the bin),
   histograms reset, and the window's modification factor advances jointly
   (Vogel, Li, Wüst & Landau 2013).

A window is converged when its ``ln f`` reaches ``ln_f_final``; converged
windows stop advancing and exchanging.  The per-window ln g pieces are
stitched into a global density of states by :mod:`repro.dos.stitching`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.obs import Instrumentation, Telemetry
from repro.obs.convergence import (
    ConvergenceConfig,
    ConvergenceLedger,
    convergence_from_env,
)
from repro.obs.costattr import COST_KIND, attribute_cost, publish_cost
from repro.obs.events import TRACE_ENV_VAR, worker_log
from repro.obs.health import HealthConfig, HealthMonitor, health_from_env
from repro.obs.profile import SectionProfiler, contribute_profile, profile_from_env
from repro.obs.timeseries import (
    TimeSeriesConfig,
    TimeSeriesRecorder,
    timeseries_from_env,
)
from repro.parallel.executors import SerialExecutor, make_executor
from repro.parallel.windows import WindowSpec, make_windows, surviving_pairs
from repro.resilience.supervisor import (
    CampaignSupervisor,
    ResilienceConfig,
    resilience_from_env,
)
from repro.sampling.batched import BatchedWangLandauSampler
from repro.sampling.binning import EnergyGrid
from repro.sampling.wang_landau import (
    WalkerCounters,
    WangLandauSampler,
    WLConfig,
    drive_into_range,
)
from repro.util.deprecation import warn_once
from repro.util.rng import RngFactory
from repro.util.validation import check_in_range, check_integer, check_probability

__all__ = ["REWLConfig", "REWLDriver", "REWLResult", "WalkerSnapshot"]


def _advance_walker(walker, n_steps: int):
    """Module-level task so process executors can pickle it.

    ``n_steps`` is per walker: a scalar walker takes ``n_steps`` WL steps, a
    batched team takes ``n_steps`` super-steps (one step per slot each).

    When ``REPRO_TRACE_DIR`` is set, each task emits one ``worker_span``
    record — tagged (pid, window, walker) via the walker's ``obs_tag`` — to
    this process's worker JSONL file, so multiprocess campaigns can be
    merged into one timeline by ``repro obs export-trace``.
    """
    log = worker_log()
    t0 = time.perf_counter() if log.enabled else 0.0
    batched = getattr(walker, "steps", None)
    if batched is not None:
        batched(n_steps)
    else:
        for _ in range(n_steps):
            walker.step()
    if log.enabled:
        window, slot = getattr(walker, "obs_tag", (None, None))
        log.emit(
            "worker_span", name="advance", dur_s=time.perf_counter() - t0,
            window=window, walker=slot,
            steps=n_steps * int(getattr(walker, "n_slots", 1)),
        )
    return walker


#: Advance backends ``REWLConfig.backend`` accepts: executor-driven
#: per-window stepping ("serial"/"thread"/"process") or the fused SPMD
#: campaign super-step, in-process ("fused") or multiprocess over
#: shared-memory segments ("shm"); see :mod:`repro.parallel.fused`.
BACKENDS = ("serial", "thread", "process", "fused", "shm")


@dataclass(frozen=True)
class REWLConfig:
    """Tuning knobs for :class:`REWLDriver`.

    ``batched_walkers`` switches each window's team from N independent
    scalar walkers to one :class:`BatchedWangLandauSampler` stepping N
    walker slots per super-step against a shared ln g (the within-window
    throughput mode; see :mod:`repro.sampling.batched`).  Default off —
    scalar teams remain bit-identical to previous releases.

    ``backend`` selects how the campaign advances: ``"serial"`` /
    ``"thread"`` / ``"process"`` build the matching executor
    (:data:`repro.parallel.executors.EXECUTORS`), while ``"fused"`` and
    ``"shm"`` step all windows as one SPMD array program
    (:mod:`repro.parallel.fused`; both imply ``batched_walkers``).
    ``shm_ranks`` caps the worker ranks of the shm backend (default: one
    per window, bounded by the CPU count).

    ``n_windows`` / ``walkers_per_window`` / ``overlap`` accept ``None``
    to be auto-tuned from the machine performance model at driver
    construction (:func:`repro.machine.autotune.plan_campaign`).
    """

    n_windows: int | None = 4
    walkers_per_window: int | None = 2
    overlap: float | None = 0.5
    exchange_interval: int = 2_000
    ln_f_init: float = 1.0
    ln_f_final: float = 1e-6
    flatness: float = 0.8
    check_interval: int | None = None  # per-walker WL flatness cadence
    seed: int = 0
    max_rounds: int = 100_000
    drive_max_steps: int = 2_000_000
    checkpoint_interval: int = 0  # rounds between snapshots (0 = off)
    batched_walkers: bool = False
    backend: str = "serial"
    shm_ranks: int | None = None

    def __post_init__(self):
        if self.n_windows is not None:
            check_integer("n_windows", self.n_windows, minimum=1)
        if self.walkers_per_window is not None:
            check_integer(
                "walkers_per_window", self.walkers_per_window, minimum=1
            )
        check_integer("exchange_interval", self.exchange_interval, minimum=1)
        check_probability("flatness", self.flatness)
        # Fail here rather than deep inside make_windows / drive_into_range.
        if self.overlap is not None:
            check_in_range("overlap", self.overlap, 0.1, 0.9)
        check_integer("max_rounds", self.max_rounds, minimum=1)
        check_integer("drive_max_steps", self.drive_max_steps, minimum=1)
        check_integer("checkpoint_interval", self.checkpoint_interval, minimum=0)
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.shm_ranks is not None:
            check_integer("shm_ranks", self.shm_ranks, minimum=1)


@dataclass
class WalkerSnapshot:
    """Post-run view of one walker (diagnostics)."""

    window: int
    walker: int
    n_steps: int
    acceptance_rate: float
    final_energy: float
    counters: WalkerCounters = field(default_factory=WalkerCounters)


@dataclass
class REWLResult:
    """Merged per-window densities of states plus run statistics."""

    global_grid: EnergyGrid
    windows: list[WindowSpec]
    window_ln_g: list[np.ndarray]
    window_visited: list[np.ndarray]
    window_iterations: list[int]
    converged: bool
    rounds: int
    total_steps: int
    exchange_attempts: np.ndarray
    exchange_accepts: np.ndarray
    walkers: list[WalkerSnapshot] = field(default_factory=list)
    telemetry: dict = field(default_factory=dict)
    degraded: bool = False
    quarantined: list[int] = field(default_factory=list)
    window_dispositions: list[dict] = field(default_factory=list)

    @property
    def exchange_rates(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.exchange_attempts > 0,
                self.exchange_accepts / np.maximum(self.exchange_attempts, 1),
                np.nan,
            )

    def stitched(self, allow_gaps: bool | None = None):
        """Global ln g stitched over windows (see :mod:`repro.dos`).

        Quarantined windows are stitched *around* (skipped, with gap
        bookkeeping on the returned :class:`~repro.dos.stitching.
        StitchedDoS`); ``allow_gaps`` defaults to True exactly when some
        window was quarantined, so complete runs keep the strict
        everything-must-connect behavior.
        """
        from repro.dos.stitching import stitch_windows

        if allow_gaps is None:
            allow_gaps = bool(self.quarantined)
        t0 = time.perf_counter()
        out = stitch_windows(
            self.global_grid, self.windows, self.window_ln_g,
            self.window_visited, skip=tuple(self.quarantined),
            allow_gaps=allow_gaps,
        )
        self._note_stitch_cost(time.perf_counter() - t0)
        return out

    def _note_stitch_cost(self, seconds: float) -> None:
        """Fold stitch wall time into this result's cost attribution.

        Stitching happens after the driver's profile was harvested, so the
        ``rewl.stitch`` section is appended to the profile dict here and
        the attribution recomputed — only when profiling was on (the run
        carries a profile) and only for the first stitch (repeat calls on
        the same result would inflate the section).
        """
        profile = self.telemetry.get("profile")
        if not isinstance(profile, dict) or "rewl.stitch" in profile:
            return
        seconds = float(seconds)
        profile["rewl.stitch"] = {
            "calls": 1, "timed": 1, "total_s": seconds, "mean_s": seconds,
            "est_total_s": seconds, "min_s": seconds, "max_s": seconds,
        }
        self.telemetry["cost"] = attribute_cost(profile)


class REWLDriver:
    """Windows × walkers replica-exchange Wang-Landau.

    Keyword-only construction::

        REWLDriver(
            hamiltonian=ham, proposal_factory=make_prop, grid=grid,
            initial_config=cfg0, config=REWLConfig(...),
        )

    Parameters
    ----------
    hamiltonian : Hamiltonian
    proposal_factory : callable
        ``proposal_factory() -> Proposal``; called once per walker so
        stateful proposals (DL caches) are never shared.  Must be
        picklable for ``backend="shm"`` (worker ranks build their own
        proposals from it — module-level factories qualify, lambdas don't;
        the driver calls it in-process and ships the instances).
    grid : EnergyGrid
        The global energy grid.
    initial_config : numpy.ndarray
        A valid configuration; each walker gets an independently shuffled
        copy driven into its window.
    config : REWLConfig
        Campaign shape and backend (``backend="serial"|"thread"|"process"``
        builds the matching executor; ``"fused"``/``"shm"`` step the whole
        campaign as one SPMD super-step — :mod:`repro.parallel.fused`).
    executor : executor, optional
        Explicit advance-phase executor; overrides the ``config.backend``
        executor choice.  Rejected for the fused/shm backends, which manage
        their own stepping.
    instrumentation : repro.obs.Instrumentation, optional
        Observability bundle — ``telemetry`` (metrics/spans/events handle),
        ``profiler`` (sampling section profiler), ``health`` (heartbeats +
        stall/anomaly detection), ``convergence`` (scientific diagnostics
        ledger), and ``timeseries`` (live status-board recorder) in one
        value.  Every field falls back to its environment knob
        (``REPRO_PROFILE``, ``REPRO_HEALTH``, ``REPRO_CONVERGENCE``,
        ``REPRO_TIMESERIES`` — and ``REPRO_OBS_PORT`` implies a recorder);
        none of them draw RNG, so an instrumented run stays bit-identical.
        The pre-bundle per-field keywords (``telemetry=``, ``profiler=``,
        ``health=``, ``convergence=``, ``timeseries=``) keep working for
        one release behind a ``DeprecationWarning``.
    checkpoint_path : path-like, optional
        Where periodic snapshots land when ``config.checkpoint_interval``
        is set; resume with :func:`repro.parallel.checkpoint.maybe_resume`.
    resilience : repro.resilience.CampaignSupervisor or ResilienceConfig,
        optional.  Campaign self-healing — numerical guard rails at
        super-step boundaries, bounded rollback to last-good in-memory
        snapshots, window quarantine with exchange re-pairing, and
        wall-clock/round/step budgets with clean terminate-and-harvest
        (DESIGN.md §14).  Defaults to the ``REPRO_RESILIENCE`` environment
        knob; guards draw no random numbers, so a guarded run that never
        trips is bit-identical to an unguarded one.  Under the fused/shm
        backends, guard trips mask *rows* of the campaign arrays (rollback
        rebinds the window's slots in place; quarantine drops the window
        from the schedule) — worker processes are never killed.
    """

    def __init__(self, *, hamiltonian=None, proposal_factory=None, grid=None,
                 initial_config=None, config=None, executor=None,
                 instrumentation=None, checkpoint_path=None, resilience=None,
                 **legacy):
        inst_fields = Instrumentation.field_names()
        unknown = set(legacy) - set(inst_fields)
        if unknown:
            raise TypeError(
                f"REWLDriver() got unexpected keyword arguments {sorted(unknown)}"
            )
        if legacy:
            if instrumentation is not None:
                raise TypeError(
                    "REWLDriver() got both instrumentation= and deprecated "
                    f"per-field keywords {sorted(legacy)}; pass everything "
                    "through Instrumentation(...)"
                )
            warn_once(
                "REWLDriver.instrumentation",
                "the per-field REWLDriver observability keywords (telemetry=, "
                "profiler=, health=, convergence=, timeseries=) are "
                "deprecated; pass instrumentation=Instrumentation(...) instead",
            )
            instrumentation = Instrumentation(**legacy)
        inst = instrumentation if instrumentation is not None else Instrumentation()
        missing = [
            k for k, v in (
                ("hamiltonian", hamiltonian),
                ("proposal_factory", proposal_factory),
                ("grid", grid),
                ("initial_config", initial_config),
            )
            if v is None
        ]
        if missing:
            raise TypeError(f"REWLDriver() missing required arguments {missing}")
        telemetry: Telemetry | None = inst.telemetry
        profiler: SectionProfiler | None = inst.profiler
        health = inst.health
        convergence = inst.convergence
        timeseries = inst.timeseries

        self.hamiltonian = hamiltonian
        self.grid = grid
        self.proposal_factory = proposal_factory
        cfg = config or REWLConfig()
        if (
            cfg.n_windows is None or cfg.walkers_per_window is None
            or cfg.overlap is None
        ):
            from repro.machine.autotune import plan_campaign

            plan = plan_campaign(
                n_bins=grid.n_bins, n_sites=hamiltonian.n_sites,
                walkers_per_window=cfg.walkers_per_window,
                overlap=cfg.overlap,
            )
            cfg = replace(
                cfg,
                n_windows=(
                    plan.n_windows if cfg.n_windows is None else cfg.n_windows
                ),
                walkers_per_window=(
                    plan.walkers_per_window
                    if cfg.walkers_per_window is None
                    else cfg.walkers_per_window
                ),
                overlap=plan.overlap if cfg.overlap is None else cfg.overlap,
            )
        if cfg.backend in ("fused", "shm") and not cfg.batched_walkers:
            # The fused super-step is defined on batched window teams.
            cfg = replace(cfg, batched_walkers=True)
        self.cfg = cfg
        if executor is not None and cfg.backend in ("fused", "shm"):
            raise TypeError(
                f"backend={cfg.backend!r} manages its own stepping; "
                "drop the executor= argument"
            )
        if executor is None and cfg.backend in ("thread", "process"):
            executor = make_executor(cfg.backend)
        self.executor = executor or SerialExecutor()
        self._engine = None
        self.obs = telemetry if telemetry is not None else Telemetry()
        self.checkpoint_path = checkpoint_path
        self.profiler = profiler if profiler is not None else profile_from_env()
        if health is None:
            health_cfg = health_from_env()
            self.health = (
                HealthMonitor(self.obs, health_cfg) if health_cfg is not None else None
            )
        elif isinstance(health, HealthConfig):
            self.health = HealthMonitor(self.obs, health)
        else:
            self.health = health
        if convergence is None:
            conv_cfg = convergence_from_env()
            self.convergence = (
                ConvergenceLedger(conv_cfg) if conv_cfg is not None else None
            )
        elif isinstance(convergence, ConvergenceConfig):
            self.convergence = ConvergenceLedger(convergence)
        else:
            self.convergence = convergence
        if resilience is None:
            res_cfg = resilience_from_env()
            self.supervisor = (
                CampaignSupervisor(res_cfg, self.obs)
                if res_cfg is not None else None
            )
        elif isinstance(resilience, ResilienceConfig):
            self.supervisor = CampaignSupervisor(resilience, self.obs)
        else:
            self.supervisor = resilience
        if timeseries is None:
            ts_cfg = timeseries_from_env()
            if ts_cfg is None and os.environ.get("REPRO_OBS_PORT", "").strip():
                # Serving implies sampling: a live /metrics endpoint with
                # nothing behind it would only report an idle board.
                ts_cfg = TimeSeriesConfig()
            self.timeseries = (
                TimeSeriesRecorder(ts_cfg) if ts_cfg is not None else None
            )
        elif isinstance(timeseries, TimeSeriesConfig):
            self.timeseries = TimeSeriesRecorder(timeseries)
        else:
            self.timeseries = timeseries
        if self.timeseries is not None:
            from repro.obs.server import get_board, server_from_env

            server_from_env()  # starts the singleton iff REPRO_OBS_PORT set
            get_board().publish_recorder(self.timeseries)
            trace = os.environ.get(TRACE_ENV_VAR, "").strip()
            if trace and trace not in ("stderr", "-"):
                get_board().publish_trace(trace)
        # Executors constructed without their own telemetry adopt ours, so
        # retry/fault/rebuild events land in this run's trace.
        bind = getattr(self.executor, "bind_telemetry", None)
        if bind is not None:
            bind(self.obs)
        self.windows = make_windows(grid, self.cfg.n_windows, self.cfg.overlap)
        self._rngs = RngFactory(self.cfg.seed)
        self._exchange_rng = self._rngs.make("rewl-exchange")

        initial_config = hamiltonian.validate_config(np.asarray(initial_config))
        wl_cfg = WLConfig(
            ln_f_init=self.cfg.ln_f_init, ln_f_final=self.cfg.ln_f_final,
            flatness=self.cfg.flatness, check_interval=self.cfg.check_interval,
            batch_size=self.cfg.walkers_per_window,
        )
        self.walkers: list[list] = []
        for w, spec in enumerate(self.windows):
            driven_rows = []
            for k in range(self.cfg.walkers_per_window):
                rng = self._rngs.make("rewl-walker", w * 10_000 + k)
                cfg0 = initial_config.copy()
                rng.shuffle(cfg0)
                driven = drive_into_range(
                    hamiltonian, proposal_factory(), spec.grid, cfg0,
                    rng=self._rngs.make("rewl-drive", w * 10_000 + k),
                    max_steps=self.cfg.drive_max_steps,
                )
                driven_rows.append((driven, rng))
            if self.cfg.batched_walkers:
                # One stepping object per window: the walkers become slots of
                # a shared-ln g batched team (same drive/shuffle streams as
                # scalar mode, so the starting states match walker-for-walker).
                team = [
                    BatchedWangLandauSampler(
                        hamiltonian=hamiltonian, proposal=proposal_factory(),
                        grid=spec.grid,
                        initial_config=np.stack([d for d, _ in driven_rows]),
                        rng=self._rngs.make("rewl-team", w), config=wl_cfg,
                    )
                ]
            else:
                team = [
                    WangLandauSampler(
                        hamiltonian=hamiltonian, proposal=proposal_factory(),
                        grid=spec.grid, initial_config=driven, rng=rng,
                        config=wl_cfg,
                    )
                    for driven, rng in driven_rows
                ]
            self.walkers.append(team)
        if self.profiler is not None and self.cfg.backend != "shm":
            # One independent profiler per walker (picklable; ships through
            # the executors and merges back in result()).  shm workers build
            # their own profilers rank-side (the engine ships the stride) and
            # return samples with each round's reply.
            for team in self.walkers:
                for walker in team:
                    walker.enable_profiling(
                        SectionProfiler(sample_every=self.profiler.sample_every)
                    )
        if self.cfg.backend == "fused":
            from repro.parallel.fused import FusedEngine

            self._engine = FusedEngine(self)
        elif self.cfg.backend == "shm":
            from repro.parallel.fused import ShmEngine

            self._engine = ShmEngine(self, n_ranks=self.cfg.shm_ranks)
        # (window, walker) identity rides on the walker objects themselves:
        # executors pass the same extra args to every task, so this is how
        # worker-side spans know which lane they belong to.  A batched team
        # is one object covering all of its window's slots.  With a fused
        # engine the same loop also binds each team's rows into the campaign
        # arrays (see _retag_window).
        for w in range(len(self.walkers)):
            self._retag_window(w)
        self.window_converged = [False] * len(self.windows)
        self.window_quarantined = [False] * len(self.windows)
        # One slot per *adjacent window pair*: zero-length for a single
        # window (no phantom pair with a NaN rate in the result).
        self.exchange_attempts = np.zeros(len(self.windows) - 1, dtype=np.int64)
        self.exchange_accepts = np.zeros_like(self.exchange_attempts)
        self.rounds = 0
        if self.convergence is not None:
            self.convergence.attach(self)
        if self.supervisor is not None:
            self.supervisor.bind(self)

    # ------------------------------------------------------------- helpers

    def _retag_window(self, w: int) -> None:
        """(Re-)stamp ``obs_tag`` identities onto window ``w``'s walkers
        (needed after walker objects are replaced, e.g. a rollback).

        This is also the fused backends' rebind hook: whenever a window's
        team object is replaced (rollback restores a pickled snapshot, a
        checkpoint load swaps teams in), the engine re-adopts it so its rows
        of the campaign arrays track the new state — masked-row recovery
        instead of process restarts.
        """
        team = self.walkers[w]
        for k, walker in enumerate(team):
            walker.obs_tag = (w, k if len(team) > 1 else None)
        if self._engine is not None:
            self._engine.bind_window(self, w)

    def close(self) -> None:
        """Release backend resources (idempotent).

        Required after a ``backend="shm"`` run: worker ranks are stopped and
        joined, and the shared-memory segments unlinked.  Teams are detached
        back onto private arrays first, so ``result()`` and checkpoints
        taken after ``close()`` stay valid.  A no-op for executor backends.
        """
        if self._engine is not None:
            self._engine.close(self)
            self._engine = None

    def _settled(self) -> bool:
        """True when every window is either converged or quarantined."""
        return all(
            c or q
            for c, q in zip(self.window_converged, self.window_quarantined)
        )

    def total_steps(self) -> int:
        """WL steps taken so far across all walkers (budget accounting)."""
        total = 0
        for team in self.walkers:
            for walker in team:
                slot_steps = getattr(walker, "slot_steps", None)
                total += (
                    int(slot_steps.sum()) if slot_steps is not None
                    else int(walker.n_steps)
                )
        return total

    def _exchange_pairs(self) -> list[tuple[int, int]]:
        """The round's exchange pair schedule.

        Adjacent neighbors normally; with quarantined windows the surviving
        neighbors are re-paired around the holes (when their specs still
        overlap).  Pair statistics live in ``exchange_attempts[left]`` —
        slot ``left`` means "the pair whose left member is window *left*",
        which coincides with the adjacent pair when nothing is quarantined
        and reuses the dead slot after window ``left + 1`` is removed.
        """
        if self.supervisor is None or not any(self.window_quarantined):
            return [(w, w + 1) for w in range(len(self.windows) - 1)]
        alive = [not q for q in self.window_quarantined]
        return surviving_pairs(self.windows, alive)

    # ------------------------------------------------------------- phases

    def _advance_phase(self) -> None:
        if self._engine is not None:
            # Fused SPMD super-step: all active windows advance as rows of
            # one campaign array program (one stacked ΔE gather per step).
            active = [
                w for w in range(len(self.walkers))
                if not self.window_converged[w]
                and not self.window_quarantined[w]
            ]
            steps = len(active) * self.cfg.exchange_interval
            prof = self.profiler
            t0 = prof.start_always("rewl.advance") if prof is not None else None
            with self.obs.span("advance", round=self.rounds,
                               walkers=len(active), steps=steps):
                self._engine.advance(self, active, self.cfg.exchange_interval)
            if prof is not None:
                prof.stop("rewl.advance", t0)
            self.obs.metrics.inc("rewl.steps", steps)
            return
        tasks: list[tuple[int, int]] = [
            (w, k)
            for w, team in enumerate(self.walkers)
            for k in range(len(team))
            if not self.window_converged[w] and not self.window_quarantined[w]
        ]
        steps = len(tasks) * self.cfg.exchange_interval
        prof = self.profiler
        t0 = prof.start_always("rewl.advance") if prof is not None else None
        with self.obs.span("advance", round=self.rounds, walkers=len(tasks),
                           steps=steps):
            payload = [self.walkers[w][k] for w, k in tasks]
            if self.supervisor is not None:
                # Partial completion: a window whose tasks exhaust their
                # retry budget is handed to the supervisor (rollback /
                # quarantine) instead of aborting the whole campaign.
                moved, failures = self.executor.map_partial(
                    _advance_walker, payload, self.cfg.exchange_interval
                )
                for (w, k), walker in zip(tasks, moved):
                    if walker is not None:
                        self.walkers[w][k] = walker
                failed: dict[int, Exception] = {}
                for idx, exc in failures.items():
                    failed.setdefault(tasks[idx][0], exc)
                for w in sorted(failed):
                    self.supervisor.on_window_failure(self, w, failed[w])
            else:
                moved = self.executor.map(
                    _advance_walker, payload, self.cfg.exchange_interval
                )
                for (w, k), walker in zip(tasks, moved):
                    self.walkers[w][k] = walker
        if prof is not None:
            prof.stop("rewl.advance", t0)
        self.obs.metrics.inc("rewl.steps", steps)

    def _exchange_phase(self) -> None:
        if self.cfg.batched_walkers:
            self._exchange_phase_batched()
            return
        prof = self.profiler
        t0 = prof.start_always("rewl.exchange_round") if prof is not None else None
        with self.obs.span("exchange", round=self.rounds):
            start = self.rounds % 2
            # pairs[start::2] over adjacent pairs reproduces the classic
            # odd/even alternation exactly; with quarantined windows the
            # schedule is the surviving re-paired topology instead.
            for left, right in self._exchange_pairs()[start::2]:
                if self.window_converged[left] or self.window_converged[right]:
                    continue
                ia = int(self._exchange_rng.integers(len(self.walkers[left])))
                ib = int(self._exchange_rng.integers(len(self.walkers[right])))
                a = self.walkers[left][ia]
                b = self.walkers[right][ib]
                self.exchange_attempts[left] += 1
                a.counters.exchange_attempts += 1
                b.counters.exchange_attempts += 1
                self.obs.metrics.inc("rewl.exchange.attempts")
                accepted = False
                in_overlap = True
                bin_a_in_b = b.grid.index(a.energy)
                bin_b_in_a = a.grid.index(b.energy)
                if bin_a_in_b < 0 or bin_b_in_a < 0:
                    in_overlap = False  # not both in the overlap
                else:
                    log_alpha = (
                        a.ln_g[a.current_bin]
                        - a.ln_g[bin_b_in_a]
                        + b.ln_g[b.current_bin]
                        - b.ln_g[bin_a_in_b]
                    )
                    if log_alpha >= 0.0 or np.log(self._exchange_rng.random()) < log_alpha:
                        a.config, b.config = b.config, a.config
                        a.energy, b.energy = b.energy, a.energy
                        a.current_bin = bin_b_in_a
                        b.current_bin = bin_a_in_b
                        self.exchange_accepts[left] += 1
                        a.counters.exchange_accepts += 1
                        b.counters.exchange_accepts += 1
                        self.obs.metrics.inc("rewl.exchange.accepts")
                        accepted = True
                if self.convergence is not None:
                    self.convergence.note_exchange(
                        left, ia, right, ib, accepted, in_overlap
                    )
                if self.obs.enabled:
                    self.obs.emit("exchange_attempt", round=self.rounds, pair=left,
                                  accepted=accepted, in_overlap=in_overlap)
        if prof is not None:
            prof.stop("rewl.exchange_round", t0)

    def _exchange_phase_batched(self) -> None:
        """Replica exchange between *slots* of batched window teams.

        Same pairing schedule, acceptance rule, and RNG draw pattern as the
        scalar phase (one slot pick per side, one uniform for acceptance);
        only the state swap differs — slots are exchanged through the teams'
        ``slot_*`` accessors instead of swapping walker attributes.
        """
        prof = self.profiler
        t0 = prof.start_always("rewl.exchange_round") if prof is not None else None
        with self.obs.span("exchange", round=self.rounds):
            start = self.rounds % 2
            for left, right in self._exchange_pairs()[start::2]:
                self._exchange_pair_batched(left, right)
        if prof is not None:
            prof.stop("rewl.exchange_round", t0)

    def _exchange_pair_batched(self, left: int, right: int) -> None:
        """One batched exchange attempt between windows ``left``/``right``.

        The unit the overlapped shm round drives directly (pairs settle as
        their windows finish stepping, in strict schedule order, so the
        exchange RNG stream matches the phase-at-a-time loop draw-for-draw).
        Converged or quarantined endpoints make the attempt a silent no-op —
        same draw-skipping as the classic phase's ``continue``.
        """
        if self.window_converged[left] or self.window_converged[right]:
            return
        if self.window_quarantined[left] or self.window_quarantined[right]:
            # Only reachable when quarantine lands mid-round (overlapped
            # engine); the phase schedule already excludes these pairs.
            return
        team_a = self.walkers[left][0]
        team_b = self.walkers[right][0]
        ka = int(self._exchange_rng.integers(team_a.n_slots))
        kb = int(self._exchange_rng.integers(team_b.n_slots))
        self.exchange_attempts[left] += 1
        team_a.counters.exchange_attempts += 1
        team_b.counters.exchange_attempts += 1
        self.obs.metrics.inc("rewl.exchange.attempts")
        accepted = False
        in_overlap = True
        bin_a_in_b = team_b.grid.index(team_a.slot_energy(ka))
        bin_b_in_a = team_a.grid.index(team_b.slot_energy(kb))
        if bin_a_in_b < 0 or bin_b_in_a < 0:
            in_overlap = False  # not both in the overlap
        else:
            log_alpha = (
                team_a.ln_g[team_a.slot_bin(ka)]
                - team_a.ln_g[bin_b_in_a]
                + team_b.ln_g[team_b.slot_bin(kb)]
                - team_b.ln_g[bin_a_in_b]
            )
            if log_alpha >= 0.0 or np.log(self._exchange_rng.random()) < log_alpha:
                cfg_a = team_a.slot_config(ka).copy()
                e_a = team_a.slot_energy(ka)
                team_a.set_slot(
                    ka, team_b.slot_config(kb), team_b.slot_energy(kb),
                    bin_b_in_a,
                )
                team_b.set_slot(kb, cfg_a, e_a, bin_a_in_b)
                self.exchange_accepts[left] += 1
                team_a.counters.exchange_accepts += 1
                team_b.counters.exchange_accepts += 1
                self.obs.metrics.inc("rewl.exchange.accepts")
                accepted = True
        if self.convergence is not None:
            self.convergence.note_exchange(
                left, ka, right, kb, accepted, in_overlap
            )
        if self.obs.enabled:
            self.obs.emit("exchange_attempt", round=self.rounds, pair=left,
                          accepted=accepted, in_overlap=in_overlap)

    def _sync_phase(self) -> None:
        prof = self.profiler
        t0 = prof.start_always("rewl.sync") if prof is not None else None
        with self.obs.span("synchronize", round=self.rounds):
            for w in range(len(self.walkers)):
                self._sync_window(w)
        if prof is not None:
            prof.stop("rewl.sync", t0)

    def _sync_window(self, w: int) -> None:
        """Merge/advance window ``w`` if its whole team is flat.

        The unit the overlapped shm round drives directly — a window syncs
        as soon as its exchange pairs have settled, which reads and writes
        exactly the state the phase-at-a-time loop would."""
        if self.window_converged[w] or self.window_quarantined[w]:
            return
        team = self.walkers[w]
        if not all(walker.is_flat() for walker in team):
            return
        merged, union = self._merge_window(team)
        for walker in team:
            walker.ln_g[...] = merged
            walker.visited[...] = union
            walker.advance_modification_factor()
        if team[0].ln_f <= self.cfg.ln_f_final:
            self.window_converged[w] = True
        if self.convergence is not None:
            self.convergence.note_sync(
                w, self.rounds, team[0].ln_f, team[0].n_iterations,
                self.window_converged[w],
            )
        self.obs.metrics.inc("rewl.syncs")
        if self.obs.enabled:
            self.obs.emit(
                "sync", round=self.rounds, window=w,
                ln_f=team[0].ln_f, iteration=team[0].n_iterations,
                converged=self.window_converged[w],
            )

    @staticmethod
    def _merge_window(team: list) -> tuple[np.ndarray, np.ndarray]:
        """Bin-wise mean of ln g over the walkers that visited each bin.

        A batched team is a single shared-ln g object, so the "merge" is the
        identity (modulo the min-shift every sync applies in scalar mode
        too).

        Pure function of the team state (callers decide whether to write the
        merge back — ``result()`` must *not* mutate walkers, or checkpoints
        taken after a run would diverge from uninterrupted runs).
        """
        n_bins = team[0].ln_g.shape[0]
        acc = np.zeros(n_bins)
        cnt = np.zeros(n_bins)
        for walker in team:
            mask = walker.visited
            ln_g = walker.ln_g.copy()
            if mask.any():
                ln_g -= ln_g[mask].min()
            acc[mask] += ln_g[mask]
            cnt[mask] += 1
        union = cnt > 0
        merged = np.zeros(n_bins)
        merged[union] = acc[union] / cnt[union]
        return merged, union

    def _maybe_checkpoint(self) -> None:
        """Periodic crash-consistent snapshot (``cfg.checkpoint_interval``)."""
        if (
            self.checkpoint_path is None
            or not self.cfg.checkpoint_interval
            or self.rounds % self.cfg.checkpoint_interval != 0
        ):
            return
        from repro.parallel.checkpoint import save_checkpoint

        prof = self.profiler
        t0 = prof.start_always("rewl.checkpoint") if prof is not None else None
        save_checkpoint(self, self.checkpoint_path)
        if prof is not None:
            prof.stop("rewl.checkpoint", t0)

    # ----------------------------------------------------------------- run

    def run(self, max_rounds: int | None = None) -> REWLResult:
        """Iterate advance/exchange/sync until every window converges."""
        limit = self.cfg.max_rounds if max_rounds is None else max_rounds
        self.obs.emit(
            "run_start", scope="rewl", n_windows=len(self.windows),
            walkers_per_window=self.cfg.walkers_per_window,
            exchange_interval=self.cfg.exchange_interval,
            ln_f_final=self.cfg.ln_f_final, seed=self.cfg.seed,
            n_bins=self.grid.n_bins, max_rounds=limit,
        )
        if self.supervisor is not None:
            # Round-0 baseline snapshots: a failure in the very first round
            # still has a guard-clean state to roll back to.
            self.supervisor.snapshot(self)
        with self.obs.span("rewl"):
            while not self._settled() and self.rounds < limit:
                if self.supervisor is not None and self.supervisor.budget_exceeded(self):
                    # Clean terminate-and-harvest: break out and report
                    # whatever converged, instead of dying to the job
                    # scheduler's SIGKILL with nothing.
                    break
                if self._engine is not None and self._engine.overlapped:
                    # Non-blocking replica exchange: the engine drains
                    # worker replies as windows finish stepping, settling
                    # exchange pairs and syncs per window instead of
                    # barriering the whole campaign between phases.
                    self._engine.run_round(self)
                else:
                    self._advance_phase()
                    self.rounds += 1
                    self.obs.metrics.inc("rewl.rounds")
                    if self.supervisor is not None:
                        # Guards run before exchange, so corrupted ln g never
                        # feeds an acceptance decision of a healthy neighbor.
                        prof = self.profiler
                        tg = (
                            prof.start_always("rewl.guard")
                            if prof is not None else None
                        )
                        self.supervisor.guard_round(self)
                        self.supervisor.snapshot(self)
                        if prof is not None:
                            prof.stop("rewl.guard", tg)
                    self._exchange_phase()
                    self._sync_phase()
                if self.convergence is not None:
                    # Before the health monitor, whose heartbeats read the
                    # ledger's ETA projection.
                    self.convergence.observe_round(self)
                if self.health is not None:
                    self.health.observe_round(self)
                if self.timeseries is not None:
                    self.timeseries.observe_round(self)
                self._maybe_checkpoint()
        if self.profiler is not None:
            merged = self.merged_profile()
            merged.publish(self.obs.metrics)
            cost = attribute_cost(merged.as_dict())
            publish_cost(cost, self.obs.metrics)
            if self.timeseries is not None:
                self.timeseries.note_cost(cost)
            contribute_profile(merged)
            if self.obs.enabled:
                self.obs.emit("profile", sections=merged.as_dict())
                self.obs.emit(COST_KIND, **cost)
        if self.timeseries is not None:
            # Final forced sample so the served view reflects the end state
            # (converged flags, final cost gauges) even off-stride.
            self.timeseries.observe_round(self, force=True)
        if self.convergence is not None and self.obs.enabled:
            self.obs.emit("convergence", **self.convergence.summary(self))
        if self.supervisor is not None and self.obs.enabled:
            self.obs.emit("resilience", **self.supervisor.summary())
        result = self.result()
        self.obs.emit(
            "run_end", scope="rewl", rounds=self.rounds,
            converged=result.converged, total_steps=result.total_steps,
            exchange_attempts=int(self.exchange_attempts.sum()),
            exchange_accepts=int(self.exchange_accepts.sum()),
            degraded=result.degraded, quarantined=result.quarantined,
        )
        return result

    def merged_profile(self) -> SectionProfiler:
        """Round-phase sections merged with every walker's hot-path profile.

        Walker profilers travel with the walkers through the executors, so
        this reduction works identically for serial, thread, and process
        backends.  Returns a fresh profiler; nothing is mutated.
        """
        merged = SectionProfiler(
            sample_every=self.profiler.sample_every if self.profiler else 1
        )
        if self.profiler is not None:
            merged.merge(self.profiler)
        for team in self.walkers:
            for walker in team:
                if walker.profiler is not None:
                    merged.merge(walker.profiler)
                shm_prof = getattr(walker, "_shm_profiler", None)
                if shm_prof is not None:
                    # Rank-side profile shipped back with the last shm round
                    # reply (the walker's own .profiler stays None under
                    # backend="shm").
                    merged.merge(shm_prof)
        return merged

    def result(self) -> REWLResult:
        window_ln_g = []
        window_visited = []
        window_iterations = []
        snapshots = []
        for w, team in enumerate(self.walkers):
            # Merge for reporting only — walker state is left untouched so a
            # checkpoint taken after result() still resumes bit-identically.
            merged, union = self._merge_window(team)
            ln_g = merged.copy()
            if union.any():
                ln_g -= ln_g[union].min()
            ln_g[~union] = 0.0
            window_ln_g.append(ln_g)
            window_visited.append(union)
            window_iterations.append(team[0].n_iterations)
            if self.cfg.batched_walkers:
                # One snapshot per slot.  Event counters are accumulated
                # team-wide in batched mode, so they ride on slot 0 only
                # (summing snapshots then stays double-count-free).
                team_obj = team[0]
                for k in range(team_obj.n_slots):
                    slot_steps = int(team_obj.slot_steps[k])
                    snapshots.append(
                        WalkerSnapshot(
                            window=w,
                            walker=k,
                            n_steps=slot_steps,
                            acceptance_rate=(
                                int(team_obj.slot_accepted[k]) / slot_steps
                                if slot_steps else 0.0
                            ),
                            final_energy=team_obj.slot_energy(k),
                            counters=(
                                replace(team_obj.counters) if k == 0
                                else WalkerCounters()
                            ),
                        )
                    )
            else:
                for k, walker in enumerate(team):
                    snapshots.append(
                        WalkerSnapshot(
                            window=w,
                            walker=k,
                            n_steps=walker.n_steps,
                            acceptance_rate=(
                                walker.n_accepted / walker.n_steps
                                if walker.n_steps else 0.0
                            ),
                            final_energy=walker.energy,
                            counters=replace(walker.counters),
                        )
                    )
        telemetry = self.obs.summary()
        if self.profiler is not None:
            telemetry["profile"] = self.merged_profile().as_dict()
            telemetry["cost"] = attribute_cost(telemetry["profile"])
        if self.health is not None:
            telemetry["health"] = self.health.summary()
        if self.convergence is not None:
            telemetry["convergence"] = self.convergence.summary(self)
        if self.supervisor is not None:
            telemetry["resilience"] = self.supervisor.summary()
        if self.timeseries is not None:
            telemetry["timeseries"] = self.timeseries.summary()
        quarantined = [
            w for w, q in enumerate(self.window_quarantined) if q
        ]
        degraded = (
            self.supervisor.degraded if self.supervisor is not None
            else bool(quarantined)
        )
        return REWLResult(
            global_grid=self.grid,
            windows=self.windows,
            window_ln_g=window_ln_g,
            window_visited=window_visited,
            window_iterations=window_iterations,
            converged=all(self.window_converged),
            rounds=self.rounds,
            total_steps=sum(s.n_steps for s in snapshots),
            exchange_attempts=self.exchange_attempts.copy(),
            exchange_accepts=self.exchange_accepts.copy(),
            walkers=snapshots,
            telemetry=telemetry,
            degraded=degraded,
            quarantined=quarantined,
            window_dispositions=(
                self.supervisor.dispositions()
                if self.supervisor is not None else []
            ),
        )
