"""Bulk-synchronous walker executors.

The REWL driver alternates *advance* phases (every walker runs a block of
Wang-Landau steps, embarrassingly parallel) with *exchange/merge* phases
(centralized, cheap).  Executors parallelize the advance phase:

- :class:`SerialExecutor` — plain loop (reference; deterministic),
- :class:`ThreadExecutor` — thread pool (low overhead; limited by the GIL
  for pure-numpy walkers but useful for walkers that release it),
- :class:`ProcessExecutor` — process pool; walker state is pickled to the
  worker and back, so results are bit-identical to the serial executor
  (each walker's RNG travels with it).

The task function must be a module-level picklable callable
``fn(walker, *args) -> walker``.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = ["SerialExecutor", "ThreadExecutor", "ProcessExecutor"]


class SerialExecutor:
    """Run tasks in a plain loop in the calling process."""

    def map(self, fn, walkers, *args) -> list:
        return [fn(w, *args) for w in walkers]

    def close(self) -> None:
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ThreadExecutor:
    """Thread-pool executor (shared memory; GIL-bound for pure Python)."""

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._pool = ThreadPoolExecutor(max_workers=n_workers)

    def map(self, fn, walkers, *args) -> list:
        futures = [self._pool.submit(fn, w, *args) for w in walkers]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ProcessExecutor:
    """Process-pool executor; walker state is shipped by pickling.

    Uses the ``spawn`` start method for fork-safety with numpy threads.
    """

    def __init__(self, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        ctx = mp.get_context("spawn")
        self._pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)

    def map(self, fn, walkers, *args) -> list:
        futures = [self._pool.submit(fn, w, *args) for w in walkers]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
