"""Bulk-synchronous walker executors with failure supervision.

The REWL driver alternates *advance* phases (every walker runs a block of
Wang-Landau steps, embarrassingly parallel) with *exchange/merge* phases
(centralized, cheap).  Executors parallelize the advance phase:

- :class:`SerialExecutor` — plain loop (reference; deterministic),
- :class:`ThreadExecutor` — thread pool (low overhead; limited by the GIL
  for pure-numpy walkers but useful for walkers that release it),
- :class:`ProcessExecutor` — process pool; walker state is pickled to the
  worker and back, so results are bit-identical to the serial executor
  (each walker's RNG travels with it).

The task function must be a module-level picklable callable
``fn(walker, *args) -> walker``.

Supervision
-----------
Days-long campaigns cannot await a dead or hung worker forever, so every
executor supervises its tasks:

- **bounded retry with backoff** (``max_retries``, ``retry_backoff``) — a
  failed attempt is resubmitted; the caller's input objects are untouched
  until ``map`` returns, so a retry recomputes the same deterministic
  result and the run stays bit-identical to a failure-free one,
- **per-task timeout** (``timeout``, pool executors only) — a future that
  does not complete in time is abandoned and the task resubmitted; the
  serial executor documents ``timeout`` as ignored (a hang in-process *is*
  the driver hanging),
- **broken-pool rebuild** — when a worker process dies hard the entire
  ``concurrent.futures`` pool is poisoned (``BrokenProcessPool``); the
  executor rebuilds the pool, harvests results that finished before the
  breakage, and resubmits the rest,
- **deterministic chaos** — a :class:`repro.faults.FaultInjector` (explicit
  argument or the ``REPRO_FAULTS`` env knob) wraps each attempt; injected
  faults fire before the task body runs, so surviving runs are bit-identical
  to fault-free ones.

Retries/timeouts/rebuilds are counted and emitted through ``repro.obs``
(metrics ``task.retries``, ``task.timeouts``, ``executor.pool_rebuilds``,
``fault.injected``; event ``task_retry``).  ``close()`` is idempotent and
``map`` after ``close`` raises ``RuntimeError``.

Partial completion
------------------
``map`` is all-or-nothing: one task exhausting its retry budget aborts the
whole phase.  ``map_partial`` instead returns
``(results, failures: dict[index, Exception])`` with ``None`` in the result
slot of each failed task, so a campaign supervisor
(:mod:`repro.resilience`) can quarantine the failing window while the rest
of the fleet keeps its completed work.  Both paths share one retry loop and
one ``(index, attempt)`` fault-key space, so a run that never exhausts a
budget is bit-identical under either entry point.
"""

from __future__ import annotations

import concurrent.futures as cf
import multiprocessing as mp
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.faults import FaultInjector, InjectedFault, faults_from_env
from repro.obs import Telemetry

__all__ = ["SerialExecutor", "ThreadExecutor", "ProcessExecutor",
           "EXECUTORS", "make_executor"]


class _Supervisor:
    """Shared retry/telemetry plumbing for all executors."""

    def __init__(self, timeout: float | None = None, max_retries: int | None = None,
                 retry_backoff: float = 0.02, faults: FaultInjector | None = None,
                 telemetry: Telemetry | None = None):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout!r}")
        if max_retries is not None and max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff!r}")
        self.faults = faults if faults is not None else faults_from_env()
        # Default retry budget: zero without fault injection (failures
        # propagate exactly as before), generous under chaos.
        self.max_retries = (
            max_retries if max_retries is not None
            else (8 if self.faults is not None else 0)
        )
        self.timeout = timeout
        self.retry_backoff = retry_backoff
        self.obs = telemetry if telemetry is not None else Telemetry()
        self._obs_bound = telemetry is not None

    def bind_telemetry(self, telemetry: Telemetry | None) -> None:
        """Adopt a driver's telemetry handle unless one was set explicitly."""
        if telemetry is not None and not self._obs_bound:
            self.obs = telemetry
            self._obs_bound = True

    def _wrap(self, fn, index: int, attempt: int):
        """Fault-wrap one attempt (no-op without an injector)."""
        if self.faults is None:
            return fn
        return self.faults.wrap(fn, index, attempt)

    def _note_retry(self, index: int, attempt: int, reason: str, exc) -> None:
        self.obs.metrics.inc("task.retries")
        if reason == "timeout":
            self.obs.metrics.inc("task.timeouts")
        if isinstance(exc, InjectedFault):
            self.obs.metrics.inc("fault.injected")
        if self.obs.enabled:
            self.obs.emit(
                "task_retry", executor=type(self).__name__, index=index,
                attempt=attempt, reason=reason,
                error=f"{type(exc).__name__}: {exc}" if exc is not None else None,
            )

    def _note_exhausted(self, index: int, exc) -> None:
        """A task burned its whole retry budget in partial mode."""
        self.obs.metrics.inc("task.failures")
        if self.obs.enabled:
            self.obs.emit(
                "task_failed", executor=type(self).__name__, index=index,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _backoff(self, attempt: int) -> None:
        if self.retry_backoff > 0:
            time.sleep(self.retry_backoff * (2 ** max(attempt - 1, 0)))


class SerialExecutor(_Supervisor):
    """Run tasks in a plain loop in the calling process.

    ``timeout`` is accepted for interface parity but ignored: a hung task in
    the calling process cannot be preempted.  Injected hangs raise after
    their sleep, so retry still covers them.
    """

    def map(self, fn, walkers, *args) -> list:
        return self._map_impl(fn, walkers, args, failures=None)

    def map_partial(self, fn, walkers, *args) -> tuple[list, dict]:
        """Like ``map``, but failed tasks yield ``None`` + an entry in the
        returned ``{index: exception}`` dict instead of aborting the phase."""
        failures: dict[int, Exception] = {}
        return self._map_impl(fn, walkers, args, failures=failures), failures

    def _map_impl(self, fn, walkers, args, failures) -> list:
        out = []
        for index, walker in enumerate(walkers):
            attempt = 0
            while True:
                try:
                    out.append(self._wrap(fn, index, attempt)(walker, *args))
                    break
                except Exception as exc:  # noqa: BLE001 - supervised retry
                    attempt += 1
                    if attempt > self.max_retries:
                        if failures is None:
                            raise
                        failures[index] = exc
                        out.append(None)
                        self._note_exhausted(index, exc)
                        break
                    self._note_retry(index, attempt, "error", exc)
                    self._backoff(attempt)
        return out

    def close(self) -> None:
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class _PoolExecutor(_Supervisor):
    """Supervised ``concurrent.futures`` pool (thread or process)."""

    def __init__(self, n_workers: int, **supervisor_kwargs):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        super().__init__(**supervisor_kwargs)
        self.n_workers = n_workers
        self._pool = self._make_pool()

    def _make_pool(self):
        raise NotImplementedError

    def map(self, fn, walkers, *args) -> list:
        return self._map_impl(fn, walkers, args, failures=None)

    def map_partial(self, fn, walkers, *args) -> tuple[list, dict]:
        """Like ``map``, but failed tasks yield ``None`` + an entry in the
        returned ``{index: exception}`` dict instead of aborting the phase."""
        failures: dict[int, Exception] = {}
        return self._map_impl(fn, walkers, args, failures=failures), failures

    def _map_impl(self, fn, walkers, args, failures) -> list:
        if self._pool is None:
            raise RuntimeError(f"{type(self).__name__} is closed")
        items = list(walkers)
        n = len(items)
        results: list = [None] * n
        done = [False] * n
        attempts = [0] * n
        futures: dict[int, cf.Future] = {}

        def submit(i: int) -> None:
            futures[i] = self._pool.submit(
                self._wrap(fn, i, attempts[i]), items[i], *args
            )

        for i in range(n):
            submit(i)
        for i in range(n):
            while not done[i]:
                try:
                    results[i] = futures[i].result(timeout=self.timeout)
                    done[i] = True
                except cf.BrokenExecutor as exc:
                    self._recover_pool(
                        exc, submit, futures, results, done, attempts, failures
                    )
                except cf.TimeoutError as exc:
                    self._retry(i, attempts, "timeout", exc, submit, done, failures)
                except Exception as exc:  # noqa: BLE001 - supervised retry
                    self._retry(i, attempts, "error", exc, submit, done, failures)
        return results

    def _retry(self, i: int, attempts: list[int], reason: str, exc, submit,
               done, failures) -> None:
        attempts[i] += 1
        if attempts[i] > self.max_retries:
            final: Exception = exc
            if reason == "timeout":
                final = TimeoutError(
                    f"task {i} timed out {attempts[i]} times "
                    f"(timeout={self.timeout}s, max_retries={self.max_retries})"
                )
                final.__cause__ = exc
            if failures is None:
                raise final
            failures[i] = final
            done[i] = True
            self._note_exhausted(i, final)
            return
        self._note_retry(i, attempts[i], reason, exc)
        self._backoff(attempts[i])
        submit(i)

    def _recover_pool(self, exc, submit, futures, results, done, attempts,
                      failures) -> None:
        """Rebuild a poisoned pool; harvest finished work, resubmit the rest."""
        self.obs.metrics.inc("executor.pool_rebuilds")
        if self.obs.enabled:
            self.obs.emit("pool_rebuild", executor=type(self).__name__,
                          error=f"{type(exc).__name__}: {exc}")
        self._pool.shutdown(wait=False)
        self._pool = self._make_pool()
        for j, fut in futures.items():
            if done[j]:
                continue
            if fut.done() and fut.exception() is None:
                results[j] = fut.result()
                done[j] = True
                continue
            attempts[j] += 1
            if attempts[j] > self.max_retries:
                final = RuntimeError(
                    f"task {j} exceeded max_retries={self.max_retries} "
                    f"across pool failures"
                )
                final.__cause__ = exc
                if failures is None:
                    raise final
                failures[j] = final
                done[j] = True
                self._note_exhausted(j, final)
                continue
            self._note_retry(j, attempts[j], "pool_broken", exc)
            submit(j)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ThreadExecutor(_PoolExecutor):
    """Thread-pool executor (shared memory; GIL-bound for pure Python).

    Timeout caveat: an abandoned (timed-out) attempt cannot be cancelled and
    keeps running in its thread; pair thread timeouts with tasks that do not
    mutate their inputs (injected hangs never do).
    """

    def __init__(self, n_workers: int = 4, **supervisor_kwargs):
        super().__init__(n_workers, **supervisor_kwargs)

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.n_workers)


class ProcessExecutor(_PoolExecutor):
    """Process-pool executor; walker state is shipped by pickling.

    Uses the ``spawn`` start method for fork-safety with numpy threads.
    A dead worker poisons the whole pool (``BrokenProcessPool``); ``map``
    transparently rebuilds it and resubmits the unfinished tasks.
    """

    def __init__(self, n_workers: int = 2, **supervisor_kwargs):
        super().__init__(n_workers, **supervisor_kwargs)

    def _make_pool(self):
        ctx = mp.get_context("spawn")
        return ProcessPoolExecutor(max_workers=self.n_workers, mp_context=ctx)


#: Executor registry for :class:`~repro.parallel.rewl.REWLConfig`'s
#: ``backend=`` knob (the fused/shm backends bypass executors entirely and
#: are wired by the driver itself).
EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(name: str, **kwargs):
    """Construct a registered advance-phase executor by name."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r}; "
            f"registered: {sorted(EXECUTORS)}"
        ) from None
    return cls(**kwargs)
