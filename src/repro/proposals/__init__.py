"""MC proposal framework (S4).

The paper's central idea is that the *proposal* is pluggable and may be a
deep generative model performing global configuration updates.  Exactness is
preserved because every proposal reports, alongside the move itself, the
log proposal-density ratio ``log q(x|x') − log q(x'|x)`` that enters the
Metropolis–Hastings acceptance rule.

Local proposals (``log q`` ratio = 0 by symmetry):

- :class:`SwapProposal` — exchange two sites (canonical; composition fixed),
- :class:`NeighborSwapProposal` — Kawasaki dynamics (nearest-neighbor swap),
- :class:`FlipProposal` — single-site mutation (grand canonical; Ising/Potts),
- :class:`MultiSwapProposal` — k simultaneous swaps.

Learned global proposals:

- :class:`VAEProposal` — decode a fresh latent draw (paper's model);
  proposal density estimated by importance sampling,
- :class:`MADEProposal` — autoregressive model with *exact* density,
- both support composition handling modes for canonical sampling.

Composition:

- :class:`MixtureProposal` — random-scan mixture of reversible kernels
  (the paper mixes local refinement with global DL moves).
"""

from repro.proposals.base import (
    BatchMove,
    FusedFields,
    Move,
    Proposal,
    assemble_move,
    price_fields,
)
from repro.proposals.cache import CurrentLogQCache
from repro.proposals.local import (
    SwapProposal,
    NeighborSwapProposal,
    FlipProposal,
    MultiSwapProposal,
)
from repro.proposals.dl_vae import VAEProposal
from repro.proposals.dl_made import MADEProposal
from repro.proposals.dl_cmade import ConditionalMADEProposal
from repro.proposals.mixture import MixtureProposal

__all__ = [
    "BatchMove",
    "FusedFields",
    "Move",
    "Proposal",
    "assemble_move",
    "price_fields",
    "CurrentLogQCache",
    "SwapProposal",
    "NeighborSwapProposal",
    "FlipProposal",
    "MultiSwapProposal",
    "VAEProposal",
    "MADEProposal",
    "ConditionalMADEProposal",
    "MixtureProposal",
]
