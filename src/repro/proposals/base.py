"""Proposal interface and the Move value object.

A proposal inspects the current configuration and returns a :class:`Move`:
the set of sites to change, their new species, the energy change, and the
log proposal-density ratio.  Samplers decide acceptance and call
:meth:`Move.apply` — proposals never mutate the configuration themselves.

Contracts (property-tested in ``tests/test_proposals.py``):

- ``delta_energy`` equals ``H(x') − H(x)`` to roundoff,
- ``log_q_ratio = log q(x|x') − log q(x'|x)`` (0 for symmetric kernels),
- composition-preserving proposals never change species counts,
- proposals may return ``None`` to signal "no valid move produced" (e.g. a
  rejection-mode DL proposal that failed to hit the composition manifold);
  samplers count this as a rejected step, which keeps the kernel reversible
  (the failure probability is configuration-independent).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.base import Hamiltonian

__all__ = ["Move", "Proposal"]


@dataclass
class Move:
    """A proposed transition ``x → x'``.

    Attributes
    ----------
    sites : numpy.ndarray
        Indices of sites whose species change.
    new_values : numpy.ndarray
        New species at those sites (same length as ``sites``).
    delta_energy : float
        ``H(x') − H(x)``.
    log_q_ratio : float
        ``log q(x|x') − log q(x'|x)`` — added to the MH log acceptance.
    """

    sites: np.ndarray
    new_values: np.ndarray
    delta_energy: float
    log_q_ratio: float = 0.0

    def apply(self, config: np.ndarray) -> None:
        """Write the move into ``config`` in place."""
        config[self.sites] = self.new_values

    @property
    def n_sites_changed(self) -> int:
        return int(len(self.sites))


class Proposal(abc.ABC):
    """Transition-kernel factory.

    Attributes
    ----------
    preserves_composition : bool
        True when every move keeps species counts fixed (required for
        canonical/HEA sampling).
    is_global : bool
        True for whole-configuration updates (used by diagnostics and the
        machine performance model, which costs global moves differently).
    """

    preserves_composition: bool = True
    is_global: bool = False
    name: str = "proposal"

    @abc.abstractmethod
    def propose(
        self,
        config: np.ndarray,
        hamiltonian: Hamiltonian,
        rng: np.random.Generator,
        current_energy: float | None = None,
    ) -> Move | None:
        """Produce a move from ``config`` (or ``None`` — see module docs).

        ``current_energy`` lets global proposals compute ``delta_energy``
        without re-evaluating ``H(x)``; samplers always pass it.
        """

    def profiled(self, profiler) -> "Proposal":
        """Profiled view of this kernel: ``propose`` calls are section-timed
        under ``proposal.<name>`` (see :mod:`repro.obs.profile`).  Returns a
        delegating wrapper; ``self`` is untouched.
        """
        from repro.obs.profile import ProfiledProposal

        return ProfiledProposal(self, profiler)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
