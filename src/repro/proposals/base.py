"""Proposal interface and the Move value object.

A proposal inspects the current configuration and returns a :class:`Move`:
the set of sites to change, their new species, the energy change, and the
log proposal-density ratio.  Samplers decide acceptance and call
:meth:`Move.apply` — proposals never mutate the configuration themselves.

Contracts (property-tested in ``tests/test_proposals.py``):

- ``delta_energy`` equals ``H(x') − H(x)`` to roundoff,
- ``log_q_ratio = log q(x|x') − log q(x'|x)`` (0 for symmetric kernels),
- composition-preserving proposals never change species counts,
- proposals may return ``None`` to signal "no valid move produced" (e.g. a
  rejection-mode DL proposal that failed to hit the composition manifold);
  samplers count this as a rejected step, which keeps the kernel reversible
  (the failure probability is configuration-independent).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.hamiltonians.base import Hamiltonian

__all__ = ["Move", "BatchMove", "FusedFields", "Proposal", "assemble_move",
           "price_fields"]


@dataclass
class Move:
    """A proposed transition ``x → x'``.

    Attributes
    ----------
    sites : numpy.ndarray
        Indices of sites whose species change.
    new_values : numpy.ndarray
        New species at those sites (same length as ``sites``).
    delta_energy : float
        ``H(x') − H(x)``.
    log_q_ratio : float
        ``log q(x|x') − log q(x'|x)`` — added to the MH log acceptance.
    """

    sites: np.ndarray
    new_values: np.ndarray
    delta_energy: float
    log_q_ratio: float = 0.0

    def apply(self, config: np.ndarray) -> None:
        """Write the move into ``config`` in place."""
        config[self.sites] = self.new_values

    @property
    def n_sites_changed(self) -> int:
        return int(len(self.sites))


@dataclass
class BatchMove:
    """One proposed transition per row of a configuration batch.

    The multi-walker stepping shape: row ``b`` is an independent walker, and
    the arrays below describe its proposed move ``x_b → x'_b``.  Produced by
    :meth:`Proposal.propose_many`, consumed by the batched Wang-Landau
    stepper (:mod:`repro.sampling.batched`).

    Attributes
    ----------
    sites : numpy.ndarray of shape (B, k)
        Per-row indices of the sites whose species change.  ``k`` is the
        widest move in the batch; rows whose move touches fewer than ``k``
        sites are **padded by repeating their first (site, value) pair** —
        an idempotent re-write of a site the move already sets, so applying
        a padded row is a plain gather-scatter with no mask.  Rows with
        ``valid[b] == False`` carry all-zero padding and must not be
        applied.  Consumers that need the true move width should not infer
        it from ``k``; global proposals always use ``k == n_sites``.
    new_values : numpy.ndarray of shape (B, k)
        New species at those sites (padded in lockstep with ``sites``).
    delta_energies : numpy.ndarray of shape (B,)
        ``H(x'_b) − H(x_b)`` per row.
    log_q_ratios : numpy.ndarray of shape (B,)
        Per-row ``log q(x|x') − log q(x'|x)``.
    valid : numpy.ndarray of shape (B,), bool, or None
        False where the proposal produced no move for that row (the batched
        analogue of :meth:`Proposal.propose` returning ``None``); ``None``
        means every row is valid.
    """

    sites: np.ndarray
    new_values: np.ndarray
    delta_energies: np.ndarray
    log_q_ratios: np.ndarray
    valid: np.ndarray | None = None

    @classmethod
    def global_update(cls, configs: np.ndarray, candidates: np.ndarray,
                      delta_energies: np.ndarray, log_q_ratios: np.ndarray,
                      valid: np.ndarray | None = None) -> "BatchMove":
        """Whole-configuration moves: every row rewrites every site.

        The common shape of the batched DL proposals — ``sites`` is a
        read-only broadcast of ``arange(n_sites)`` (zero storage per row),
        ``new_values`` the candidate configurations.  Rows flagged invalid
        should carry their *current* configuration as the candidate so an
        accidental apply is a no-op.
        """
        B, n_sites = configs.shape
        return cls(
            sites=np.broadcast_to(np.arange(n_sites, dtype=np.int64), (B, n_sites)),
            new_values=np.asarray(candidates).astype(configs.dtype, copy=False),
            delta_energies=np.asarray(delta_energies, dtype=np.float64),
            log_q_ratios=np.asarray(log_q_ratios, dtype=np.float64),
            valid=None if valid is None or valid.all() else valid,
        )

    @property
    def batch_size(self) -> int:
        return int(self.delta_energies.shape[0])

    def apply_row(self, b: int, config: np.ndarray) -> None:
        """Write row ``b``'s move into ``config`` in place."""
        config[self.sites[b]] = self.new_values[b]


@dataclass
class FusedFields:
    """The random fields of a vectorized local proposal, before pricing.

    Splitting :meth:`Proposal.propose_many` into a *draw* half (RNG only,
    per walker team, shape ``(B,)`` fields) and a *price* half (pure ΔE
    kernels, no RNG) lets the fused REWL super-step draw fields per window
    — preserving each window's independent RNG stream bit-for-bit — and
    then price every window's rows with **one** stacked
    ``delta_energy_*_many`` gather.  The per-row kernels in
    :mod:`repro.kernels.ops` reduce along ``axis=1`` only, so the stacked
    call is bitwise identical to per-window calls.

    Attributes
    ----------
    kind : str
        ``"swap"`` (``a``/``b`` are the two site columns) or ``"flip"``
        (``a`` is the site column, ``b`` the new species column).
    a, b : numpy.ndarray of shape (B,)
        The drawn fields, meaning per ``kind`` as above.
    """

    kind: str
    a: np.ndarray
    b: np.ndarray


def assemble_move(fields: FusedFields, configs: np.ndarray,
                  delta_energies: np.ndarray) -> BatchMove:
    """Pack priced fields into a :class:`BatchMove`.

    Produces exactly the arrays the monolithic ``propose_many`` overrides
    used to build, so the split path is bit-identical to the fused one.
    """
    n_rows = configs.shape[0]
    rows = np.arange(n_rows)
    if fields.kind == "swap":
        ii, jj = fields.a, fields.b
        return BatchMove(
            sites=np.stack([ii, jj], axis=1),
            new_values=np.stack(
                [configs[rows, jj], configs[rows, ii]], axis=1
            ).astype(configs.dtype, copy=False),
            delta_energies=delta_energies,
            log_q_ratios=np.zeros(n_rows),
        )
    if fields.kind == "flip":
        return BatchMove(
            sites=fields.a[:, None],
            new_values=fields.b[:, None].astype(configs.dtype, copy=False),
            delta_energies=delta_energies,
            log_q_ratios=np.zeros(n_rows),
        )
    raise ValueError(f"unknown fused-field kind {fields.kind!r}")


def price_fields(fields: FusedFields, configs: np.ndarray,
                 hamiltonian: Hamiltonian) -> BatchMove:
    """Price drawn fields with the matching ``delta_energy_*_many`` kernel."""
    if fields.kind == "swap":
        delta = hamiltonian.delta_energy_swap_many(configs, fields.a, fields.b)
    elif fields.kind == "flip":
        delta = hamiltonian.delta_energy_flip_many(configs, fields.a, fields.b)
    else:
        raise ValueError(f"unknown fused-field kind {fields.kind!r}")
    return assemble_move(fields, configs, delta)


class Proposal(abc.ABC):
    """Transition-kernel factory.

    Attributes
    ----------
    preserves_composition : bool
        True when every move keeps species counts fixed (required for
        canonical/HEA sampling).
    is_global : bool
        True for whole-configuration updates (used by diagnostics and the
        machine performance model, which costs global moves differently).
    """

    preserves_composition: bool = True
    is_global: bool = False
    name: str = "proposal"

    @abc.abstractmethod
    def propose(
        self,
        config: np.ndarray,
        hamiltonian: Hamiltonian,
        rng: np.random.Generator,
        current_energy: float | None = None,
    ) -> Move | None:
        """Produce a move from ``config`` (or ``None`` — see module docs).

        ``current_energy`` lets global proposals compute ``delta_energy``
        without re-evaluating ``H(x)``; samplers always pass it.
        """

    def propose_many(
        self,
        configs: np.ndarray,
        hamiltonian: Hamiltonian,
        rng: np.random.Generator,
        current_energies: np.ndarray | None = None,
    ) -> BatchMove:
        """Produce one move per row of ``configs`` (shape ``(B, n_sites)``).

        Default: loop over :meth:`propose` row by row with the shared
        ``rng``.  Local proposals override this with a fully vectorized
        kernel (array RNG draws + ``delta_energy_*_many``); the batched WL
        stepper only ever calls this entry point, so overriding it is all a
        proposal needs to opt into batched stepping.

        Note the default's RNG *draw order* differs from the vectorized
        overrides (scalar draws per row vs. one array draw per field), so
        batched trajectories are reproducible per proposal implementation,
        not across them.
        """
        configs = np.atleast_2d(configs)
        n_rows = configs.shape[0]
        # Single pass: each move is packed as it is proposed.  The padded
        # width starts at 1 and grows when a wider move appears; grown
        # columns are back-filled with each earlier row's first (site,
        # value) pair, which is exactly that row's pad value (see the
        # :class:`BatchMove` pad semantics), so no second pass is needed.
        k = 1
        sites = np.zeros((n_rows, k), dtype=np.int64)
        new_values = np.zeros((n_rows, k), dtype=configs.dtype)
        delta = np.zeros(n_rows, dtype=np.float64)
        log_q = np.zeros(n_rows, dtype=np.float64)
        valid = np.zeros(n_rows, dtype=bool)
        for b in range(n_rows):
            e = None if current_energies is None else float(current_energies[b])
            m = self.propose(configs[b], hamiltonian, rng, current_energy=e)
            if m is None:
                continue
            valid[b] = True
            width = m.sites.shape[0]
            if width > k:
                grow = width - k
                sites = np.concatenate(
                    [sites, np.repeat(sites[:, :1], grow, axis=1)], axis=1
                )
                new_values = np.concatenate(
                    [new_values, np.repeat(new_values[:, :1], grow, axis=1)], axis=1
                )
                k = width
            sites[b, :width] = m.sites
            sites[b, width:] = m.sites[0]
            new_values[b, :width] = m.new_values
            new_values[b, width:] = m.new_values[0]
            delta[b] = m.delta_energy
            log_q[b] = m.log_q_ratio
        return BatchMove(
            sites=sites, new_values=new_values, delta_energies=delta,
            log_q_ratios=log_q, valid=None if valid.all() else valid,
        )

    def draw_fields(
        self,
        configs: np.ndarray,
        hamiltonian: Hamiltonian,
        rng: np.random.Generator,
    ) -> FusedFields | None:
        """Draw the per-row random fields of a vectorized local kernel.

        Returns ``None`` when the proposal has no draw/price split (the
        default); the fused super-step then falls back to that team's
        monolithic :meth:`propose_many`.  Overrides must consume the RNG in
        exactly the order the matching ``propose_many`` did, so either path
        yields the same trajectory.
        """
        return None

    def profiled(self, profiler) -> "Proposal":
        """Profiled view of this kernel: ``propose`` calls are section-timed
        under ``proposal.<name>`` (see :mod:`repro.obs.profile`).  Returns a
        delegating wrapper; ``self`` is untouched.
        """
        from repro.obs.profile import ProfiledProposal

        return ProfiledProposal(self, profiler)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
