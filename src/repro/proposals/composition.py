"""Composition handling for global (whole-configuration) proposals.

HEA thermodynamics is canonical: species counts are fixed.  A generative
model decodes configurations sitewise, so its raw samples scatter around the
target composition.  Three modes are supported by the DL proposals:

``"free"``
    No handling — for non-conserved models (Ising/Potts flips allowed).

``"reject"``
    Resample until the draw lies exactly on the composition manifold.  This
    is *exact*: the restricted kernel is an independence sampler with density
    ``q(x)/Z_c`` where ``Z_c`` (the model's total mass on the manifold) is a
    constant that cancels in the MH ratio, so using the unrestricted
    ``log q`` is correct.  Failure after ``max_tries`` returns no move (a
    configuration-independent event — reversibility is unaffected).

``"repair"``
    Project the draw onto the manifold by reassigning randomly chosen
    excess-species sites to deficit species.  Cheap and what large-scale
    practice (including the paper's regime) effectively relies on, but the
    MH correction then uses the *pre-repair* density as an approximation of
    the true (repaired) proposal density; the induced sampling bias is
    measured against exact enumeration in ``tests/test_dl_proposals.py``
    and reported in experiment E10.
"""

from __future__ import annotations

import numpy as np

__all__ = ["repair_composition", "matches_composition", "COMPOSITION_MODES"]

COMPOSITION_MODES = ("free", "reject", "repair")


def matches_composition(config: np.ndarray, target_counts: np.ndarray) -> bool:
    """True when ``config`` has exactly the target species counts."""
    counts = np.bincount(np.asarray(config, dtype=np.int64), minlength=len(target_counts))
    return bool(np.array_equal(counts, np.asarray(target_counts, dtype=np.int64)))


def repair_composition(config: np.ndarray, target_counts: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
    """Project ``config`` to the target composition (returns a new array).

    Repeatedly reassigns a uniformly random site of the currently
    most-overrepresented species to the most-underrepresented species.
    Terminates in at most ``sum |counts − target|`` reassignments.
    """
    target = np.asarray(target_counts, dtype=np.int64)
    out = np.array(config, copy=True)
    counts = np.bincount(out.astype(np.int64), minlength=len(target))
    excess = counts - target
    if excess.sum() != 0:
        raise ValueError(
            f"target counts sum to {target.sum()} but configuration has "
            f"{counts.sum()} sites"
        )
    while np.any(excess != 0):
        over = int(np.argmax(excess))
        under = int(np.argmin(excess))
        candidates = np.nonzero(out == over)[0]
        site = int(candidates[rng.integers(len(candidates))])
        out[site] = under
        excess[over] -= 1
        excess[under] += 1
    return out
