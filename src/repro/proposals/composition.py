"""Composition handling for global (whole-configuration) proposals.

HEA thermodynamics is canonical: species counts are fixed.  A generative
model decodes configurations sitewise, so its raw samples scatter around the
target composition.  Three modes are supported by the DL proposals:

``"free"``
    No handling — for non-conserved models (Ising/Potts flips allowed).

``"reject"``
    Resample until the draw lies exactly on the composition manifold.  This
    is *exact*: the restricted kernel is an independence sampler with density
    ``q(x)/Z_c`` where ``Z_c`` (the model's total mass on the manifold) is a
    constant that cancels in the MH ratio, so using the unrestricted
    ``log q`` is correct.  Failure after ``max_tries`` returns no move (a
    configuration-independent event — reversibility is unaffected).

``"repair"``
    Project the draw onto the manifold by reassigning randomly chosen
    excess-species sites to deficit species.  Cheap and what large-scale
    practice (including the paper's regime) effectively relies on, but the
    MH correction then uses the *pre-repair* density as an approximation of
    the true (repaired) proposal density; the induced sampling bias is
    measured against exact enumeration in ``tests/test_dl_proposals.py``
    and reported in experiment E10.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "repair_composition",
    "matches_composition",
    "composition_counts_rows",
    "first_match_per_row",
    "COMPOSITION_MODES",
]

COMPOSITION_MODES = ("free", "reject", "repair")


def matches_composition(config: np.ndarray, target_counts: np.ndarray) -> bool:
    """True when ``config`` has exactly the target species counts."""
    counts = np.bincount(np.asarray(config, dtype=np.int64), minlength=len(target_counts))
    return bool(np.array_equal(counts, np.asarray(target_counts, dtype=np.int64)))


def composition_counts_rows(configs: np.ndarray, n_species: int) -> np.ndarray:
    """Species counts per row: ``(..., n_sites) -> (..., n_species)``.

    One flat ``bincount`` with per-row offsets — no Python loop over rows,
    so the batched DL proposals can composition-check a whole candidate
    pool at once.
    """
    configs = np.asarray(configs, dtype=np.int64)
    lead_shape = configs.shape[:-1]
    flat = configs.reshape(-1, configs.shape[-1])
    n_rows = flat.shape[0]
    offsets = np.arange(n_rows, dtype=np.int64)[:, None] * n_species
    counts = np.bincount((flat + offsets).ravel(), minlength=n_rows * n_species)
    return counts.reshape(lead_shape + (n_species,))


def first_match_per_row(pool: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """First composition-matching candidate per row of a ``(B, T, n)`` pool.

    ``targets`` is the ``(B, n_species)`` per-row target counts.  Returns
    ``(first_index, has_match)``: the column of row ``b``'s first match in
    its T-candidate pool (0 where none), and whether one exists — the
    batched analogue of the scalar reject-mode scan.
    """
    n_species = targets.shape[-1]
    pool_counts = composition_counts_rows(pool, n_species)  # (B, T, S)
    match = (pool_counts == np.asarray(targets)[:, None, :]).all(axis=-1)
    has = match.any(axis=1)
    return np.argmax(match, axis=1), has


def repair_composition(config: np.ndarray, target_counts: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
    """Project ``config`` to the target composition (returns a new array).

    Repeatedly reassigns a uniformly random site of the currently
    most-overrepresented species to the most-underrepresented species.
    Terminates in at most ``sum |counts − target|`` reassignments.
    """
    target = np.asarray(target_counts, dtype=np.int64)
    out = np.array(config, copy=True)
    counts = np.bincount(out.astype(np.int64), minlength=len(target))
    excess = counts - target
    if excess.sum() != 0:
        raise ValueError(
            f"target counts sum to {target.sum()} but configuration has "
            f"{counts.sum()} sites"
        )
    while np.any(excess != 0):
        over = int(np.argmax(excess))
        under = int(np.argmin(excess))
        candidates = np.nonzero(out == over)[0]
        site = int(candidates[rng.integers(len(candidates))])
        out[site] = under
        excess[over] -= 1
        excess[under] += 1
    return out
