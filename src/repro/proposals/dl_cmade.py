"""Conditional-MADE global proposal — one model, many temperatures/windows.

With a *state-independent* conditioning vector (e.g. the replica's fixed
temperature) this is an exact independence sampler like
:class:`~repro.proposals.dl_made.MADEProposal`.

With *state-dependent* conditioning — e.g. conditioning on the walker's
current energy, the natural choice inside Wang-Landau windows — detailed
balance requires conditioning the reverse move on the *proposed* state::

    α = min(1, π(x')/π(x) · q(x | c(x')) / q(x' | c(x)))

Both densities are exact MADE evaluations, so the kernel stays exact (this
is the correction large-scale implementations are most likely to get wrong;
the test suite checks it by sampling a tiny system with an aggressively
state-dependent conditioner and comparing against enumeration).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.configuration import one_hot
from repro.nn.models.cmade import ConditionalMADE
from repro.proposals.base import Move, Proposal
from repro.proposals.composition import (
    COMPOSITION_MODES,
    matches_composition,
    repair_composition,
)
from repro.util.validation import check_integer

__all__ = ["ConditionalMADEProposal"]


class ConditionalMADEProposal(Proposal):
    """Global proposal from a conditional autoregressive model.

    Parameters
    ----------
    model : ConditionalMADE
    conditioner : callable
        ``conditioner(config, energy) -> (cond_dim,) array``.  May depend on
        the state (see module docstring); for a fixed-temperature replica
        pass ``lambda config, energy: beta_encoding``.
    composition : {"free", "reject", "repair"}
    max_reject_tries : int
    """

    is_global = True

    def __init__(self, model: ConditionalMADE,
                 conditioner: Callable[[np.ndarray, float], np.ndarray],
                 composition: str = "reject", max_reject_tries: int = 64):
        if composition not in COMPOSITION_MODES:
            raise ValueError(
                f"composition must be one of {COMPOSITION_MODES}, got {composition!r}"
            )
        self.model = model
        self.conditioner = conditioner
        self.composition = composition
        self.max_reject_tries = check_integer("max_reject_tries", max_reject_tries, minimum=1)
        self.preserves_composition = composition != "free"
        self.name = f"cmade({composition})"

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        c = np.asarray(config)
        n_species = self.model.config.n_species
        if current_energy is None:
            current_energy = float(hamiltonian.energy(c))
        cond_fwd = np.asarray(self.conditioner(c, float(current_energy)), dtype=np.float64)

        candidate, logq_new = self._draw(c, cond_fwd, rng, n_species)
        if candidate is None:
            return None
        new_energy = float(hamiltonian.energy(candidate))
        # Reverse move: drawn from the kernel conditioned on the *proposed*
        # state (identical to cond_fwd when the conditioner ignores state).
        cond_rev = np.asarray(self.conditioner(candidate, new_energy), dtype=np.float64)
        logq_old = float(self.model.log_prob(one_hot(c, n_species)[None], cond_rev)[0])
        return Move(
            sites=np.arange(hamiltonian.n_sites),
            new_values=candidate.astype(c.dtype),
            delta_energy=new_energy - float(current_energy),
            log_q_ratio=logq_old - logq_new,
        )

    def _draw(self, config, cond, rng, n_species):
        if self.composition == "free":
            cand, lp = self.model.sample(1, cond, rng, return_log_prob=True)
            return cand[0], float(lp[0])
        target = np.bincount(config.astype(np.int64), minlength=n_species)
        batch, lps = self.model.sample(
            self.max_reject_tries, cond, rng, return_log_prob=True
        )
        for row, lp in zip(batch, lps):
            if matches_composition(row, target):
                return row, float(lp)
        if self.composition == "reject":
            return None, None
        repaired = repair_composition(batch[0], target, rng)
        lp = float(self.model.log_prob(one_hot(repaired, n_species)[None], cond)[0])
        return repaired, lp
