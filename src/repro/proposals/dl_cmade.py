"""Conditional-MADE global proposal — one model, many temperatures/windows.

With a *state-independent* conditioning vector (e.g. the replica's fixed
temperature) this is an exact independence sampler like
:class:`~repro.proposals.dl_made.MADEProposal`.

With *state-dependent* conditioning — e.g. conditioning on the walker's
current energy, the natural choice inside Wang-Landau windows — detailed
balance requires conditioning the reverse move on the *proposed* state::

    α = min(1, π(x')/π(x) · q(x | c(x')) / q(x' | c(x)))

Both densities are exact MADE evaluations, so the kernel stays exact (this
is the correction large-scale implementations are most likely to get wrong;
the test suite checks it by sampling a tiny system with an aggressively
state-dependent conditioner and comparing against enumeration).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.configuration import one_hot
from repro.nn.models.cmade import ConditionalMADE
from repro.nn.workspace import Workspace
from repro.proposals.base import BatchMove, Move, Proposal
from repro.proposals.cache import CurrentLogQCache
from repro.proposals.composition import (
    COMPOSITION_MODES,
    composition_counts_rows,
    first_match_per_row,
    matches_composition,
    repair_composition,
)
from repro.util.validation import check_integer

__all__ = ["ConditionalMADEProposal"]


class ConditionalMADEProposal(Proposal):
    """Global proposal from a conditional autoregressive model.

    Parameters
    ----------
    model : ConditionalMADE
    conditioner : callable
        ``conditioner(config, energy) -> (cond_dim,) array``.  May depend on
        the state (see module docstring); for a fixed-temperature replica
        pass ``lambda config, energy: beta_encoding``.
    composition : {"free", "reject", "repair"}
    max_reject_tries : int
    """

    is_global = True

    def __init__(self, model: ConditionalMADE,
                 conditioner: Callable[[np.ndarray, float], np.ndarray],
                 composition: str = "reject", max_reject_tries: int = 64):
        if composition not in COMPOSITION_MODES:
            raise ValueError(
                f"composition must be one of {COMPOSITION_MODES}, got {composition!r}"
            )
        self.model = model
        self.conditioner = conditioner
        self.composition = composition
        self.max_reject_tries = check_integer("max_reject_tries", max_reject_tries, minimum=1)
        self.preserves_composition = composition != "free"
        self.name = f"cmade({composition})"
        # Keyed on (config, reverse-conditioning) bytes: with a
        # state-independent conditioner the reverse conditioning is
        # constant, so rejected steps hit the cache exactly like MADE; a
        # state-dependent conditioner changes the key with every candidate
        # and the cache degrades to correct misses.
        self._logq_cache = CurrentLogQCache()
        #: Pooled layer intermediates for the model's forwards
        #: (semantics-preserving — see :mod:`repro.nn.workspace`).
        self.workspace = Workspace()
        self.model.bind_workspace(self.workspace)

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        c = np.asarray(config)
        n_species = self.model.config.n_species
        if current_energy is None:
            current_energy = float(hamiltonian.energy(c))
        cond_fwd = np.asarray(self.conditioner(c, float(current_energy)), dtype=np.float64)

        candidate, logq_new = self._draw(c, cond_fwd, rng, n_species)
        if candidate is None:
            return None
        new_energy = float(hamiltonian.energy(candidate))
        # Reverse move: drawn from the kernel conditioned on the *proposed*
        # state (identical to cond_fwd when the conditioner ignores state).
        cond_rev = np.asarray(self.conditioner(candidate, new_energy), dtype=np.float64)
        key = CurrentLogQCache.key(c, CurrentLogQCache.key(cond_rev))
        logq_old = self._logq_cache.get(key)
        if logq_old is None:
            logq_old = float(self.model.log_prob(one_hot(c[None], n_species), cond_rev)[0])
            self._logq_cache.put(key, logq_old)
        return Move(
            sites=np.arange(hamiltonian.n_sites),
            new_values=candidate.astype(c.dtype),
            delta_energy=new_energy - float(current_energy),
            log_q_ratio=logq_old - logq_new,
        )

    def propose_many(self, configs, hamiltonian: Hamiltonian, rng,
                     current_energies=None) -> BatchMove:
        """Batched conditional inference: one pool draw + one reverse scoring.

        The conditioner itself stays a per-row Python call (it is arbitrary
        user code), but every model evaluation is batched: the candidate
        pool is one ``model.sample(B·tries)`` (or ``sample(B)``) pass with
        per-row conditioning, and all reverse densities — conditioned on
        each row's *proposed* state, as detailed balance requires — are one
        ``log_prob`` forward.
        """
        configs = np.atleast_2d(np.asarray(configs))
        B = configs.shape[0]
        n_species = self.model.config.n_species
        if current_energies is None:
            current_energies = hamiltonian.energies(configs)
        current_energies = np.asarray(current_energies, dtype=np.float64)
        cond_fwd = np.stack([
            np.asarray(self.conditioner(configs[b], float(current_energies[b])),
                       dtype=np.float64)
            for b in range(B)
        ])

        valid = None
        if self.composition == "free":
            candidates, logq_new = self.model.sample(B, cond_fwd, rng, return_log_prob=True)
        else:
            tries = self.max_reject_tries
            pool, pool_lp = self.model.sample(
                B * tries, np.repeat(cond_fwd, tries, axis=0), rng, return_log_prob=True
            )
            pool = pool.reshape(B, tries, -1)
            pool_lp = pool_lp.reshape(B, tries)
            targets = composition_counts_rows(configs, n_species)
            first, has = first_match_per_row(pool, targets)
            candidates = pool[np.arange(B), first]
            logq_new = pool_lp[np.arange(B), first].copy()
            miss = np.nonzero(~has)[0]
            if self.composition == "reject":
                if len(miss):
                    valid = has
                    candidates[miss] = configs[miss]  # no-op rows, never applied
                    logq_new[miss] = 0.0
            elif len(miss):
                repaired = np.stack([
                    repair_composition(pool[b, 0], targets[b], rng) for b in miss
                ])
                candidates[miss] = repaired
                logq_new[miss] = self.model.log_prob(
                    one_hot(repaired, n_species), cond_fwd[miss]
                )

        new_energies = hamiltonian.energies(candidates)
        cond_rev = np.stack([
            np.asarray(self.conditioner(candidates[b], float(new_energies[b])),
                       dtype=np.float64)
            if (valid is None or valid[b]) else cond_fwd[b]
            for b in range(B)
        ])
        extras = [CurrentLogQCache.key(cond_rev[b]) for b in range(B)]
        values, missing, keys = self._logq_cache.lookup_many(configs, extras=extras)
        if missing.any():
            fresh = self.model.log_prob(
                one_hot(configs[missing], n_species), cond_rev[missing]
            )
            self._logq_cache.store_many(keys, missing, values, fresh)
        logq_old = values

        delta = new_energies - current_energies
        log_q = logq_old - logq_new
        if valid is not None:
            delta[~valid] = 0.0
            log_q[~valid] = 0.0
        return BatchMove.global_update(configs, candidates, delta, log_q, valid=valid)

    def invalidate_cache(self) -> None:
        """Drop cached ``log q`` values (call after retraining the model)."""
        self._logq_cache.invalidate()

    def _draw(self, config, cond, rng, n_species):
        if self.composition == "free":
            cand, lp = self.model.sample(1, cond, rng, return_log_prob=True)
            return cand[0], float(lp[0])
        target = np.bincount(config.astype(np.int64), minlength=n_species)
        batch, lps = self.model.sample(
            self.max_reject_tries, cond, rng, return_log_prob=True
        )
        for row, lp in zip(batch, lps):
            if matches_composition(row, target):
                return row, float(lp)
        if self.composition == "reject":
            return None, None
        repaired = repair_composition(batch[0], target, rng)
        lp = float(self.model.log_prob(one_hot(repaired[None], n_species), cond)[0])
        return repaired, lp
