"""VAE global proposal — the paper's deep-learning MC proposal.

Proposes an entire configuration by decoding a fresh prior draw from a
:class:`~repro.nn.models.vae.CategoricalVAE` trained online on the walker's
history (see :mod:`repro.training`).  The Metropolis–Hastings correction
uses the IWAE estimate of the model marginal ``log q(x)`` (see
``CategoricalVAE.log_marginal``); the estimator's sample count trades bias
for cost and is swept in the E10 ablation.

Batched inference (:meth:`VAEProposal.propose_many`): a K-walker team draws
its whole candidate pool in one decoder pass, estimates ``log q`` of all
candidates in one IWAE call (``n_marginal_samples`` batched forwards total,
instead of per walker), reuses cached current-configuration scores
(:class:`~repro.proposals.cache.CurrentLogQCache` — rejected steps stop
re-scoring an unchanged configuration), and prices candidates with one
batched full-config energy evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.configuration import one_hot
from repro.nn.models.vae import CategoricalVAE
from repro.nn.workspace import Workspace
from repro.proposals.base import BatchMove, Move, Proposal
from repro.proposals.cache import CurrentLogQCache
from repro.proposals.composition import (
    COMPOSITION_MODES,
    composition_counts_rows,
    first_match_per_row,
    matches_composition,
    repair_composition,
)
from repro.util.validation import check_integer

__all__ = ["VAEProposal"]


class VAEProposal(Proposal):
    """Independence-style global proposal from a trained VAE.

    Parameters
    ----------
    model : CategoricalVAE
    n_marginal_samples : int
        Importance samples per ``log q`` estimate.
    composition : {"free", "reject", "repair"}
        See :mod:`repro.proposals.composition`.
    max_reject_tries : int
        Decoded batch size for ``"reject"`` mode; if no draw matches the
        composition, :meth:`propose` returns ``None`` (a rejected step).
    """

    is_global = True

    def __init__(self, model: CategoricalVAE, n_marginal_samples: int = 32,
                 composition: str = "repair", max_reject_tries: int = 64,
                 logit_temperature: float = 1.0):
        if composition not in COMPOSITION_MODES:
            raise ValueError(
                f"composition must be one of {COMPOSITION_MODES}, got {composition!r}"
            )
        if logit_temperature <= 0:
            raise ValueError(f"logit_temperature must be > 0, got {logit_temperature}")
        self.model = model
        self.n_marginal_samples = check_integer("n_marginal_samples", n_marginal_samples, minimum=1)
        self.composition = composition
        self.max_reject_tries = check_integer("max_reject_tries", max_reject_tries, minimum=1)
        #: Decoder broadening (>1 flattens the proposal; see the E10
        #: sharpening ablation).  Sampling and density evaluation use the
        #: same value, so the kernel stays exactly defined.
        self.logit_temperature = float(logit_temperature)
        self.preserves_composition = composition != "free"
        self.name = f"vae({composition})"
        # log q(x_current) cache: the current configuration only changes on
        # acceptance, so consecutive proposals reuse the same value (note
        # the IWAE estimate is frozen per configuration until then — the
        # same value the scalar per-bytes cache has always reused).
        self._logq_cache = CurrentLogQCache()
        #: Pooled layer intermediates for encoder/decoder forwards
        #: (semantics-preserving — see :mod:`repro.nn.workspace`).
        self.workspace = Workspace()
        self.model.bind_workspace(self.workspace)

    # ------------------------------------------------------------------ api

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        c = np.asarray(config)
        candidate = self._draw(c, rng)
        if candidate is None:
            return None
        logq_old = self._log_q(c, rng)
        logq_new = self._log_q(candidate, rng, cache=False)
        if current_energy is None:
            current_energy = hamiltonian.energy(c)
        new_energy = float(hamiltonian.energy(candidate))
        return Move(
            sites=np.arange(hamiltonian.n_sites),
            new_values=candidate.astype(c.dtype),
            delta_energy=new_energy - float(current_energy),
            log_q_ratio=logq_old - logq_new,
        )

    def propose_many(self, configs, hamiltonian: Hamiltonian, rng,
                     current_energies=None) -> BatchMove:
        """One decode pass + two IWAE calls + one energy pass for B walkers.

        The candidate pool is ``model.sample(B)`` (``"free"``/``"repair"``)
        or ``model.sample(B·tries)`` chunked ``tries`` per row with
        first-match assignment (``"reject"``) — per-row composition
        semantics identical to the scalar kernel.  ``log q`` draws its IWAE
        noise from ``rng`` batch-wise, so trajectories are reproducible per
        entry point (the documented ``propose_many`` RNG contract), not
        across scalar/batched.
        """
        configs = np.atleast_2d(np.asarray(configs))
        B = configs.shape[0]
        tau = self.logit_temperature
        valid = None

        if self.composition == "free":
            candidates = self.model.sample(B, rng, logit_temperature=tau)
        elif self.composition == "reject":
            tries = self.max_reject_tries
            pool = self.model.sample(B * tries, rng, logit_temperature=tau)
            pool = pool.reshape(B, tries, -1)
            targets = composition_counts_rows(configs, self.model.config.n_species)
            first, has = first_match_per_row(pool, targets)
            candidates = pool[np.arange(B), first]
            if not has.all():
                valid = has
                candidates[~has] = configs[~has]  # no-op rows, never applied
        else:  # repair
            raw = self.model.sample(B, rng, logit_temperature=tau)
            targets = composition_counts_rows(configs, self.model.config.n_species)
            candidates = np.stack([
                repair_composition(raw[b], targets[b], rng) for b in range(B)
            ])

        logq_old = self._log_q_current_many(configs, rng)
        score_rows = np.arange(B) if valid is None else np.nonzero(valid)[0]
        logq_new = np.zeros(B, dtype=np.float64)
        if len(score_rows):
            logq_new[score_rows] = self._log_q_batch(candidates[score_rows], rng)
        if current_energies is None:
            current_energies = hamiltonian.energies(configs)
        delta = hamiltonian.energies(candidates) - np.asarray(current_energies, dtype=np.float64)
        log_q = logq_old - logq_new
        if valid is not None:
            delta[~valid] = 0.0
            log_q[~valid] = 0.0
        return BatchMove.global_update(configs, candidates, delta, log_q, valid=valid)

    # ------------------------------------------------------------- internals

    def _draw(self, config: np.ndarray, rng) -> np.ndarray | None:
        tau = self.logit_temperature
        if self.composition == "free":
            return self.model.sample(1, rng, logit_temperature=tau)[0]
        target = np.bincount(config.astype(np.int64), minlength=self.model.config.n_species)
        if self.composition == "reject":
            batch = self.model.sample(self.max_reject_tries, rng, logit_temperature=tau)
            for row in batch:
                if matches_composition(row, target):
                    return row
            return None
        raw = self.model.sample(1, rng, logit_temperature=tau)[0]
        return repair_composition(raw, target, rng)

    def _log_q_batch(self, configs: np.ndarray, rng) -> np.ndarray:
        """IWAE ``log q`` of a (R, n_sites) batch in one estimator call."""
        encoded = one_hot(np.atleast_2d(configs), self.model.config.n_species)
        return np.asarray(self.model.log_marginal(
            encoded, n_samples=self.n_marginal_samples, rng=rng,
            logit_temperature=self.logit_temperature,
        ), dtype=np.float64)

    def _log_q(self, config: np.ndarray, rng, cache: bool = True) -> float:
        key = CurrentLogQCache.key(config) if cache else None
        if key is not None:
            cached = self._logq_cache.get(key)
            if cached is not None:
                return cached
        value = float(self._log_q_batch(config[None], rng)[0])
        if key is not None:
            self._logq_cache.put(key, value)
        return value

    def _log_q_current_many(self, configs: np.ndarray, rng) -> np.ndarray:
        values, missing, keys = self._logq_cache.lookup_many(configs)
        if missing.any():
            fresh = self._log_q_batch(configs[missing], rng)
            self._logq_cache.store_many(keys, missing, values, fresh)
        return values

    def invalidate_cache(self) -> None:
        """Drop cached ``log q`` values (call after retraining the model)."""
        self._logq_cache.invalidate()
