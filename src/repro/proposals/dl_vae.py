"""VAE global proposal — the paper's deep-learning MC proposal.

Proposes an entire configuration by decoding a fresh prior draw from a
:class:`~repro.nn.models.vae.CategoricalVAE` trained online on the walker's
history (see :mod:`repro.training`).  The Metropolis–Hastings correction
uses the IWAE estimate of the model marginal ``log q(x)`` (see
``CategoricalVAE.log_marginal``); the estimator's sample count trades bias
for cost and is swept in the E10 ablation.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.configuration import one_hot
from repro.nn.models.vae import CategoricalVAE
from repro.proposals.base import Move, Proposal
from repro.proposals.composition import (
    COMPOSITION_MODES,
    matches_composition,
    repair_composition,
)
from repro.util.validation import check_integer

__all__ = ["VAEProposal"]


class VAEProposal(Proposal):
    """Independence-style global proposal from a trained VAE.

    Parameters
    ----------
    model : CategoricalVAE
    n_marginal_samples : int
        Importance samples per ``log q`` estimate.
    composition : {"free", "reject", "repair"}
        See :mod:`repro.proposals.composition`.
    max_reject_tries : int
        Decoded batch size for ``"reject"`` mode; if no draw matches the
        composition, :meth:`propose` returns ``None`` (a rejected step).
    """

    is_global = True

    def __init__(self, model: CategoricalVAE, n_marginal_samples: int = 32,
                 composition: str = "repair", max_reject_tries: int = 64,
                 logit_temperature: float = 1.0):
        if composition not in COMPOSITION_MODES:
            raise ValueError(
                f"composition must be one of {COMPOSITION_MODES}, got {composition!r}"
            )
        if logit_temperature <= 0:
            raise ValueError(f"logit_temperature must be > 0, got {logit_temperature}")
        self.model = model
        self.n_marginal_samples = check_integer("n_marginal_samples", n_marginal_samples, minimum=1)
        self.composition = composition
        self.max_reject_tries = check_integer("max_reject_tries", max_reject_tries, minimum=1)
        #: Decoder broadening (>1 flattens the proposal; see the E10
        #: sharpening ablation).  Sampling and density evaluation use the
        #: same value, so the kernel stays exactly defined.
        self.logit_temperature = float(logit_temperature)
        self.preserves_composition = composition != "free"
        self.name = f"vae({composition})"
        # log q(x_current) cache: the current configuration only changes on
        # acceptance, so consecutive proposals reuse the same value.
        self._logq_cache: dict[bytes, float] = {}

    # ------------------------------------------------------------------ api

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        c = np.asarray(config)
        candidate = self._draw(c, rng)
        if candidate is None:
            return None
        logq_old = self._log_q(c, rng)
        logq_new = self._log_q(candidate, rng, cache=False)
        if current_energy is None:
            current_energy = hamiltonian.energy(c)
        new_energy = float(hamiltonian.energy(candidate))
        return Move(
            sites=np.arange(hamiltonian.n_sites),
            new_values=candidate.astype(c.dtype),
            delta_energy=new_energy - float(current_energy),
            log_q_ratio=logq_old - logq_new,
        )

    # ------------------------------------------------------------- internals

    def _draw(self, config: np.ndarray, rng) -> np.ndarray | None:
        tau = self.logit_temperature
        if self.composition == "free":
            return self.model.sample(1, rng, logit_temperature=tau)[0]
        target = np.bincount(config.astype(np.int64), minlength=self.model.config.n_species)
        if self.composition == "reject":
            batch = self.model.sample(self.max_reject_tries, rng, logit_temperature=tau)
            for row in batch:
                if matches_composition(row, target):
                    return row
            return None
        raw = self.model.sample(1, rng, logit_temperature=tau)[0]
        return repair_composition(raw, target, rng)

    def _log_q(self, config: np.ndarray, rng, cache: bool = True) -> float:
        key = config.tobytes() if cache else None
        if key is not None and key in self._logq_cache:
            return self._logq_cache[key]
        encoded = one_hot(config, self.model.config.n_species)[None]
        value = float(
            self.model.log_marginal(
                encoded, n_samples=self.n_marginal_samples, rng=rng,
                logit_temperature=self.logit_temperature,
            )[0]
        )
        if key is not None:
            if len(self._logq_cache) > 8:
                self._logq_cache.clear()
            self._logq_cache[key] = value
        return value

    def invalidate_cache(self) -> None:
        """Drop cached ``log q`` values (call after retraining the model)."""
        self._logq_cache.clear()
