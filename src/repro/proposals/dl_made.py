"""MADE global proposal with *exact* proposal densities.

The autoregressive factorization gives ``log q(x)`` in closed form, so the
Metropolis–Hastings correction carries no estimator noise — this proposal is
the exactness cross-check for :class:`~repro.proposals.dl_vae.VAEProposal`
(on small exactly-enumerable systems the MADE-driven chain must reproduce
the Boltzmann distribution to statistical tolerance; see
``tests/test_dl_proposals.py``).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.configuration import one_hot
from repro.nn.models.made import MADE
from repro.proposals.base import Move, Proposal
from repro.proposals.composition import (
    COMPOSITION_MODES,
    matches_composition,
    repair_composition,
)
from repro.util.validation import check_integer

__all__ = ["MADEProposal"]


class MADEProposal(Proposal):
    """Independence sampler driven by a MADE model.

    Parameters
    ----------
    model : MADE
    composition : {"free", "reject", "repair"}
        ``"reject"`` keeps the kernel exact (constant restriction mass
        cancels); ``"repair"`` trades exactness for acceptance like the VAE
        (see :mod:`repro.proposals.composition`).
    max_reject_tries : int
        Batch size for ``"reject"`` draws.
    """

    is_global = True

    def __init__(self, model: MADE, composition: str = "reject", max_reject_tries: int = 64):
        if composition not in COMPOSITION_MODES:
            raise ValueError(
                f"composition must be one of {COMPOSITION_MODES}, got {composition!r}"
            )
        self.model = model
        self.composition = composition
        self.max_reject_tries = check_integer("max_reject_tries", max_reject_tries, minimum=1)
        self.preserves_composition = composition != "free"
        self.name = f"made({composition})"

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        c = np.asarray(config)
        n_species = self.model.config.n_species

        if self.composition == "free":
            candidate, logq_new = self.model.sample(1, rng, return_log_prob=True)
            candidate, logq_new = candidate[0], float(logq_new[0])
        else:
            target = np.bincount(c.astype(np.int64), minlength=n_species)
            batch, logps = self.model.sample(self.max_reject_tries, rng, return_log_prob=True)
            candidate = logq_new = None
            for row, lp in zip(batch, logps):
                if matches_composition(row, target):
                    candidate, logq_new = row, float(lp)
                    break
            if candidate is None:
                if self.composition == "reject":
                    return None
                candidate = repair_composition(batch[0], target, rng)
                logq_new = float(
                    self.model.log_prob(one_hot(candidate, n_species)[None])[0]
                )

        logq_old = float(self.model.log_prob(one_hot(c, n_species)[None])[0])
        if current_energy is None:
            current_energy = hamiltonian.energy(c)
        new_energy = float(hamiltonian.energy(candidate))
        return Move(
            sites=np.arange(hamiltonian.n_sites),
            new_values=candidate.astype(c.dtype),
            delta_energy=new_energy - float(current_energy),
            log_q_ratio=logq_old - logq_new,
        )
