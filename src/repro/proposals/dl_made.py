"""MADE global proposal with *exact* proposal densities.

The autoregressive factorization gives ``log q(x)`` in closed form, so the
Metropolis–Hastings correction carries no estimator noise — this proposal is
the exactness cross-check for :class:`~repro.proposals.dl_vae.VAEProposal`
(on small exactly-enumerable systems the MADE-driven chain must reproduce
the Boltzmann distribution to statistical tolerance; see
``tests/test_dl_proposals.py`` and the batched variant in
``tests/test_dl_batched.py``).

Batched inference (:meth:`MADEProposal.propose_many`): a K-walker team
costs **one** model sampling pass (``model.sample(K·tries)`` draws the whole
candidate pool), one ``log_prob`` forward for the stale current rows, and
one batched full-config energy evaluation — instead of K of each.  The
current-configuration ``log q`` is cached per walker
(:class:`~repro.proposals.cache.CurrentLogQCache`): rejected steps leave a
walker's configuration unchanged, so its score is only recomputed after an
accepted move (content key changes) or model retraining
(:meth:`invalidate_cache`).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.configuration import one_hot
from repro.nn.models.made import MADE
from repro.nn.workspace import Workspace
from repro.proposals.base import BatchMove, Move, Proposal
from repro.proposals.cache import CurrentLogQCache
from repro.proposals.composition import (
    COMPOSITION_MODES,
    composition_counts_rows,
    first_match_per_row,
    matches_composition,
    repair_composition,
)
from repro.util.validation import check_integer

__all__ = ["MADEProposal"]


class MADEProposal(Proposal):
    """Independence sampler driven by a MADE model.

    Parameters
    ----------
    model : MADE
    composition : {"free", "reject", "repair"}
        ``"reject"`` keeps the kernel exact (constant restriction mass
        cancels); ``"repair"`` trades exactness for acceptance like the VAE
        (see :mod:`repro.proposals.composition`).
    max_reject_tries : int
        Batch size for ``"reject"`` draws (per walker in the batched path).
    """

    is_global = True

    def __init__(self, model: MADE, composition: str = "reject", max_reject_tries: int = 64):
        if composition not in COMPOSITION_MODES:
            raise ValueError(
                f"composition must be one of {COMPOSITION_MODES}, got {composition!r}"
            )
        self.model = model
        self.composition = composition
        self.max_reject_tries = check_integer("max_reject_tries", max_reject_tries, minimum=1)
        self.preserves_composition = composition != "free"
        self.name = f"made({composition})"
        self._logq_cache = CurrentLogQCache()
        #: Pooled layer intermediates for the model's forwards (sampling,
        #: scoring, and training all reuse the same shape-keyed buffers;
        #: binding is semantics-preserving — see :mod:`repro.nn.workspace`).
        self.workspace = Workspace()
        self.model.bind_workspace(self.workspace)

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        c = np.asarray(config)
        n_species = self.model.config.n_species

        if self.composition == "free":
            candidate, logq_new = self.model.sample(1, rng, return_log_prob=True)
            candidate, logq_new = candidate[0], float(logq_new[0])
        else:
            target = np.bincount(c.astype(np.int64), minlength=n_species)
            batch, logps = self.model.sample(self.max_reject_tries, rng, return_log_prob=True)
            candidate = logq_new = None
            for row, lp in zip(batch, logps):
                if matches_composition(row, target):
                    candidate, logq_new = row, float(lp)
                    break
            if candidate is None:
                if self.composition == "reject":
                    return None
                candidate = repair_composition(batch[0], target, rng)
                logq_new = float(
                    self.model.log_prob(one_hot(candidate[None], n_species))[0]
                )

        logq_old = self._log_q_current(c)
        if current_energy is None:
            current_energy = hamiltonian.energy(c)
        new_energy = float(hamiltonian.energy(candidate))
        return Move(
            sites=np.arange(hamiltonian.n_sites),
            new_values=candidate.astype(c.dtype),
            delta_energy=new_energy - float(current_energy),
            log_q_ratio=logq_old - logq_new,
        )

    # ------------------------------------------------------------- batched

    def propose_many(self, configs, hamiltonian: Hamiltonian, rng,
                     current_energies=None) -> BatchMove:
        """One candidate pool, one scoring forward, one energy pass for B rows.

        Per composition mode the candidate pool is ``model.sample(B)``
        (``"free"``/the repair base draws) or ``model.sample(B·tries)``
        chunked ``tries`` per row with first-match assignment (``"reject"``,
        and the repair fast path) — per-row semantics identical to the
        scalar kernel, so ``B=1`` draws the very same candidate from the
        same RNG stream.
        """
        configs = np.atleast_2d(np.asarray(configs))
        B = configs.shape[0]
        n_species = self.model.config.n_species
        valid = None

        if self.composition == "free":
            candidates, logq_new = self.model.sample(B, rng, return_log_prob=True)
        else:
            tries = self.max_reject_tries
            pool, pool_lp = self.model.sample(B * tries, rng, return_log_prob=True)
            pool = pool.reshape(B, tries, -1)
            pool_lp = pool_lp.reshape(B, tries)
            targets = composition_counts_rows(configs, n_species)
            first, has = first_match_per_row(pool, targets)
            rows = np.arange(B)
            candidates = pool[rows, first]
            logq_new = pool_lp[rows, first].copy()
            miss = np.nonzero(~has)[0]
            if self.composition == "reject":
                if len(miss):
                    valid = has
                    candidates[miss] = configs[miss]  # no-op rows, never applied
                    logq_new[miss] = 0.0
            elif len(miss):
                repaired = np.stack([
                    repair_composition(pool[b, 0], targets[b], rng) for b in miss
                ])
                candidates[miss] = repaired
                logq_new[miss] = self.model.log_prob(one_hot(repaired, n_species))

        logq_old = self._log_q_current_many(configs)
        if current_energies is None:
            current_energies = hamiltonian.energies(configs)
        delta = hamiltonian.energies(candidates) - np.asarray(current_energies, dtype=np.float64)
        log_q = logq_old - logq_new
        if valid is not None:
            delta[~valid] = 0.0
            log_q[~valid] = 0.0
        return BatchMove.global_update(configs, candidates, delta, log_q, valid=valid)

    # ----------------------------------------------------------- internals

    def _log_q_current(self, config: np.ndarray) -> float:
        key = CurrentLogQCache.key(config)
        value = self._logq_cache.get(key)
        if value is None:
            value = float(self.model.log_prob(one_hot(config[None],
                                                      self.model.config.n_species))[0])
            self._logq_cache.put(key, value)
        return value

    def _log_q_current_many(self, configs: np.ndarray) -> np.ndarray:
        values, missing, keys = self._logq_cache.lookup_many(configs)
        if missing.any():
            fresh = self.model.log_prob(
                one_hot(configs[missing], self.model.config.n_species)
            )
            self._logq_cache.store_many(keys, missing, values, fresh)
        return values

    def invalidate_cache(self) -> None:
        """Drop cached ``log q`` values (call after retraining the model)."""
        self._logq_cache.invalidate()
