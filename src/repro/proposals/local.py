"""Local (symmetric) proposals.

These are the classical kernels the paper's DL proposals are measured
against: they satisfy ``q(x'|x) = q(x|x')`` by construction, so their
``log_q_ratio`` is exactly 0.

Symmetry arguments (why ``log_q_ratio = 0``):

- :class:`SwapProposal` with ``require_distinct=True`` draws uniformly from
  the set of unlike-species site pairs; a swap permutes the *multiset* of
  species, so the number of unlike pairs — hence the selection probability —
  is identical before and after the move.
- :class:`NeighborSwapProposal` draws uniformly from a fixed bond list.
- :class:`FlipProposal` draws a site uniformly and a *different* species
  uniformly; the reverse flip has the same probability.
- :class:`MultiSwapProposal` draws an ordered sequence of k swaps, each
  uniform; the reversed sequence undoes the move with equal probability.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import (
    BatchMove,
    FusedFields,
    Move,
    Proposal,
    price_fields,
)
from repro.util.validation import check_integer

__all__ = ["SwapProposal", "NeighborSwapProposal", "FlipProposal", "MultiSwapProposal"]

_MAX_DISTINCT_TRIES = 256


class SwapProposal(Proposal):
    """Exchange the species of two random sites (canonical move).

    Parameters
    ----------
    require_distinct : bool
        Resample until the two sites carry different species (avoids
        wasting steps on identity moves).  With extremely lopsided
        compositions the resampling loop is bounded and falls back to the
        possibly-identity pair.
    """

    preserves_composition = True
    is_global = False

    def __init__(self, require_distinct: bool = True):
        self.require_distinct = bool(require_distinct)
        self.name = "swap"

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        n = hamiltonian.n_sites
        i = j = 0
        for _ in range(_MAX_DISTINCT_TRIES):
            i, j = int(rng.integers(n)), int(rng.integers(n))
            if i == j:
                continue
            if not self.require_distinct or config[i] != config[j]:
                break
        delta = hamiltonian.delta_energy_swap(config, i, j)
        return Move(
            sites=np.array([i, j]),
            new_values=np.array([config[j], config[i]], dtype=config.dtype),
            delta_energy=delta,
            log_q_ratio=0.0,
        )

    def draw_fields(self, configs, hamiltonian: Hamiltonian, rng):
        """Array site-pair draws with the bounded distinct-pair resample.

        The resampling loop reruns only the rows that still hold an
        identity pair, mirroring the scalar kernel's distinct-pair
        semantics (and its fallback to a possibly-identity pair on
        exhaustion).
        """
        configs = np.atleast_2d(configs)
        n_rows = configs.shape[0]
        n = hamiltonian.n_sites
        rows = np.arange(n_rows)
        ii = rng.integers(n, size=n_rows)
        jj = rng.integers(n, size=n_rows)
        for _ in range(_MAX_DISTINCT_TRIES - 1):
            bad = ii == jj
            if self.require_distinct:
                bad |= configs[rows, ii] == configs[rows, jj]
            if not bad.any():
                break
            n_bad = int(bad.sum())
            ii[bad] = rng.integers(n, size=n_bad)
            jj[bad] = rng.integers(n, size=n_bad)
        return FusedFields(kind="swap", a=ii, b=jj)

    def propose_many(self, configs, hamiltonian: Hamiltonian, rng,
                     current_energies=None) -> BatchMove:
        """Vectorized per-row swaps: array site draws + ``delta_energy_swap_many``."""
        configs = np.atleast_2d(configs)
        fields = self.draw_fields(configs, hamiltonian, rng)
        return price_fields(fields, configs, hamiltonian)


class NeighborSwapProposal(Proposal):
    """Kawasaki dynamics: swap a random nearest-neighbor pair.

    Physically the local diffusion move for alloys; much slower mixing than
    :class:`SwapProposal`, included as the conservative baseline.
    """

    preserves_composition = True
    is_global = False

    def __init__(self, shell: int = 0):
        self.shell = check_integer("shell", shell, minimum=0)
        self.name = f"nbr-swap(shell={shell})"
        self._pairs_cache: tuple[int, np.ndarray] | None = None

    def _pairs(self, hamiltonian) -> np.ndarray:
        key = id(hamiltonian)
        if self._pairs_cache is None or self._pairs_cache[0] != key:
            shells = hamiltonian.lattice.neighbor_shells(self.shell + 1)
            self._pairs_cache = (key, shells[self.shell].pairs())
        return self._pairs_cache[1]

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        pairs = self._pairs(hamiltonian)
        i, j = pairs[int(rng.integers(pairs.shape[0]))]
        delta = hamiltonian.delta_energy_swap(config, int(i), int(j))
        return Move(
            sites=np.array([i, j]),
            new_values=np.array([config[j], config[i]], dtype=config.dtype),
            delta_energy=delta,
            log_q_ratio=0.0,
        )


class FlipProposal(Proposal):
    """Mutate one random site to a uniformly chosen *different* species.

    Changes composition — the Ising/Potts (grand-canonical) move.  Canonical
    HEA samplers must not use it; samplers assert on the
    ``preserves_composition`` flag.
    """

    preserves_composition = False
    is_global = False

    def __init__(self):
        self.name = "flip"

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        site = int(rng.integers(hamiltonian.n_sites))
        old = int(config[site])
        shift = 1 + int(rng.integers(hamiltonian.n_species - 1))
        new = (old + shift) % hamiltonian.n_species
        delta = hamiltonian.delta_energy_flip(config, site, new)
        return Move(
            sites=np.array([site]),
            new_values=np.array([new], dtype=config.dtype),
            delta_energy=delta,
            log_q_ratio=0.0,
        )

    def draw_fields(self, configs, hamiltonian: Hamiltonian, rng):
        """Array site + species-shift draws for per-row flips."""
        configs = np.atleast_2d(configs)
        n_rows = configs.shape[0]
        rows = np.arange(n_rows)
        sites = rng.integers(hamiltonian.n_sites, size=n_rows)
        old = configs[rows, sites]
        shift = 1 + rng.integers(hamiltonian.n_species - 1, size=n_rows)
        new = (old + shift) % hamiltonian.n_species
        return FusedFields(kind="flip", a=sites, b=new)

    def propose_many(self, configs, hamiltonian: Hamiltonian, rng,
                     current_energies=None) -> BatchMove:
        """Vectorized per-row flips: array draws + ``delta_energy_flip_many``."""
        configs = np.atleast_2d(configs)
        fields = self.draw_fields(configs, hamiltonian, rng)
        return price_fields(fields, configs, hamiltonian)


class MultiSwapProposal(Proposal):
    """k simultaneous swaps — a tunable-range interpolation between local
    and global updates (used in the E5/E6 proposal-quality ablations).

    The energy change is computed by applying the swaps sequentially with
    incremental updates on a scratch copy, so arbitrary overlaps between the
    k pairs are handled exactly.
    """

    preserves_composition = True
    is_global = False

    def __init__(self, k: int = 4, require_distinct: bool = True):
        self.k = check_integer("k", k, minimum=1)
        self.require_distinct = bool(require_distinct)
        self.name = f"multi-swap(k={k})"

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None):
        n = hamiltonian.n_sites
        scratch = config.copy()
        delta = 0.0
        touched: list[int] = []
        for _ in range(self.k):
            i = j = 0
            for _try in range(_MAX_DISTINCT_TRIES):
                i, j = int(rng.integers(n)), int(rng.integers(n))
                if i == j:
                    continue
                if not self.require_distinct or scratch[i] != scratch[j]:
                    break
            delta += hamiltonian.delta_energy_swap(scratch, i, j)
            scratch[i], scratch[j] = scratch[j], scratch[i]
            touched += [i, j]
        sites = np.unique(np.array(touched, dtype=np.int64))
        return Move(
            sites=sites,
            new_values=scratch[sites],
            delta_energy=delta,
            log_q_ratio=0.0,
        )
