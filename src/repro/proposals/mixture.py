"""Random-scan mixture of proposals.

DeepThermo's practical sampler mixes cheap local refinement with expensive
learned global jumps (e.g. 90% swaps / 10% VAE moves).  A random-scan
mixture of kernels that each satisfy detailed balance w.r.t. the target is
itself reversible, so the per-component acceptance rule (each component's
own ``log_q_ratio``) is exact — no cross-component density evaluation is
needed.  This requires the component choice to be made *independently of the
current state*, which is what :meth:`propose` does.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import Move, Proposal

__all__ = ["MixtureProposal"]


class MixtureProposal(Proposal):
    """Pick a component proposal with fixed probabilities each step.

    Parameters
    ----------
    components : sequence of (Proposal, weight)
        Weights are normalized internally; all must be positive.
    """

    def __init__(self, components):
        components = list(components)
        if not components:
            raise ValueError("MixtureProposal requires at least one component")
        self.proposals = [p for p, _w in components]
        weights = np.array([float(w) for _p, w in components])
        if np.any(weights <= 0):
            raise ValueError(f"all mixture weights must be positive, got {weights}")
        self.weights = weights / weights.sum()
        self.preserves_composition = all(p.preserves_composition for p in self.proposals)
        self.is_global = any(p.is_global for p in self.proposals)
        self.name = "mix[" + ",".join(
            f"{p.name}:{w:.2f}" for p, w in zip(self.proposals, self.weights)
        ) + "]"
        self.counts = np.zeros(len(self.proposals), dtype=np.int64)

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None) -> Move | None:
        k = int(rng.choice(len(self.proposals), p=self.weights))
        self.counts[k] += 1
        return self.proposals[k].propose(config, hamiltonian, rng, current_energy=current_energy)

    def component_fractions(self) -> np.ndarray:
        """Empirical fraction of steps each component served so far."""
        total = self.counts.sum()
        return self.counts / total if total else np.zeros_like(self.weights)
