"""Random-scan mixture of proposals.

DeepThermo's practical sampler mixes cheap local refinement with expensive
learned global jumps (e.g. 90% swaps / 10% VAE moves).  A random-scan
mixture of kernels that each satisfy detailed balance w.r.t. the target is
itself reversible, so the per-component acceptance rule (each component's
own ``log_q_ratio``) is exact — no cross-component density evaluation is
needed.  This requires the component choice to be made *independently of the
current state*, which is what :meth:`propose` does.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import BatchMove, Move, Proposal

__all__ = ["MixtureProposal"]


class MixtureProposal(Proposal):
    """Pick a component proposal with fixed probabilities each step.

    Parameters
    ----------
    components : sequence of (Proposal, weight)
        Weights are normalized internally; all must be positive.
    """

    def __init__(self, components):
        components = list(components)
        if not components:
            raise ValueError("MixtureProposal requires at least one component")
        self.proposals = [p for p, _w in components]
        weights = np.array([float(w) for _p, w in components])
        if np.any(weights <= 0):
            raise ValueError(f"all mixture weights must be positive, got {weights}")
        self.weights = weights / weights.sum()
        self.preserves_composition = all(p.preserves_composition for p in self.proposals)
        self.is_global = any(p.is_global for p in self.proposals)
        self.name = "mix[" + ",".join(
            f"{p.name}:{w:.2f}" for p, w in zip(self.proposals, self.weights)
        ) + "]"
        self.counts = np.zeros(len(self.proposals), dtype=np.int64)

    def propose(self, config, hamiltonian: Hamiltonian, rng, current_energy=None) -> Move | None:
        k = int(rng.choice(len(self.proposals), p=self.weights))
        self.counts[k] += 1
        return self.proposals[k].propose(config, hamiltonian, rng, current_energy=current_energy)

    def propose_many(self, configs, hamiltonian: Hamiltonian, rng,
                     current_energies=None) -> BatchMove:
        """Draw a component per row, dispatch each group to its batched path.

        The component choice stays state-independent (one array draw up
        front), so the random-scan reversibility argument is unchanged.  Rows
        assigned the same component are proposed in **one** ``propose_many``
        call on that component — a team of B walkers costs at most
        ``len(self.proposals)`` batched sub-calls (and typically one DL
        forward-pass group per DL component), not B scalar proposals.
        """
        configs = np.atleast_2d(np.asarray(configs))
        B = configs.shape[0]
        if current_energies is not None:
            current_energies = np.asarray(current_energies, dtype=np.float64)
        ks = rng.choice(len(self.proposals), size=B, p=self.weights)
        self.counts += np.bincount(ks, minlength=len(self.proposals))

        sub: list[tuple[np.ndarray, BatchMove]] = []
        k_max = 1
        for comp in range(len(self.proposals)):
            rows = np.nonzero(ks == comp)[0]
            if not len(rows):
                continue
            move = self.proposals[comp].propose_many(
                configs[rows], hamiltonian, rng,
                current_energies=None if current_energies is None
                else current_energies[rows],
            )
            sub.append((rows, move))
            k_max = max(k_max, move.sites.shape[1])

        sites = np.zeros((B, k_max), dtype=np.int64)
        new_values = np.zeros((B, k_max), dtype=configs.dtype)
        delta = np.zeros(B, dtype=np.float64)
        log_q = np.zeros(B, dtype=np.float64)
        valid = np.zeros(B, dtype=bool)
        for rows, move in sub:
            width = move.sites.shape[1]
            sites[rows, :width] = move.sites
            new_values[rows, :width] = move.new_values
            if width < k_max:
                # Narrow sub-batches keep the documented pad semantics:
                # repeat each row's first (site, value) pair.
                sites[rows, width:] = move.sites[:, :1]
                new_values[rows, width:] = move.new_values[:, :1]
            delta[rows] = move.delta_energies
            log_q[rows] = move.log_q_ratios
            valid[rows] = True if move.valid is None else move.valid
        return BatchMove(
            sites=sites, new_values=new_values, delta_energies=delta,
            log_q_ratios=log_q, valid=None if valid.all() else valid,
        )

    def invalidate_cache(self) -> None:
        """Forward cache invalidation to components that keep one."""
        for p in self.proposals:
            inv = getattr(p, "invalidate_cache", None)
            if inv is not None:
                inv()

    def component_fractions(self) -> np.ndarray:
        """Empirical fraction of steps each component served so far."""
        total = self.counts.sum()
        return self.counts / total if total else np.zeros_like(self.weights)
