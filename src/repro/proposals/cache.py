"""Current-configuration ``log q`` caching for the DL proposals.

An independence proposal needs ``log q`` of the *current* configuration in
every MH ratio, but the current configuration only changes when a move is
accepted — at the low acceptance rates global proposals run at, the same
value would otherwise be recomputed (a full model forward, or an IWAE
estimate) for every rejected step.

:class:`CurrentLogQCache` is the shared cache all four DL proposals use,
scalar and batched.  Versioning is two-level:

- an **epoch counter** bumped by :meth:`invalidate` — the proposal's
  ``invalidate_cache()`` calls it after the model retrains, which makes
  every stored value stale at once;
- a **per-configuration content key** (the config bytes, plus the
  conditioning bytes for conditional models).  An accepted move rewrites the
  walker's configuration, so its key changes and the stale entry simply
  stops being hit — no explicit per-walker version bump is needed.  This is
  deliberate: replica exchange (``set_slot``) and checkpoint restores
  rewrite walker configurations *behind the proposal's back*, so a
  sampler-maintained "bumped on accept" counter would silently serve stale
  values after a swap; content keys cannot.

The batch API (:meth:`lookup_many` / :meth:`store_many`) lets a batched
``propose_many`` score only the rows that actually changed since the last
super-step in one model forward.

Capacity is bounded FIFO: with B walkers in flight at most B entries are
live, so the default capacity only matters as a safety net against leaks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CurrentLogQCache"]


class CurrentLogQCache:
    """Bounded FIFO map from configuration bytes to cached ``log q``.

    Exposes a small dict-like surface (``in``, ``[]``, ``len``, ``clear``)
    so tests can poke entries directly.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._store: dict[bytes, float] = {}
        #: Epochs survived — bumped by :meth:`invalidate`; exposed so run
        #: health/telemetry can confirm retraining invalidations happen.
        self.version = 0
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- scalar

    @staticmethod
    def key(config: np.ndarray, extra: bytes = b"") -> bytes:
        """Content key of a configuration (+ conditioning bytes if any)."""
        return np.ascontiguousarray(config).tobytes() + extra

    def get(self, key: bytes) -> float | None:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: bytes, value: float) -> None:
        if key not in self._store and len(self._store) >= self.capacity:
            self._store.pop(next(iter(self._store)))
        self._store[key] = float(value)

    # -------------------------------------------------------------- batched

    def lookup_many(self, configs: np.ndarray,
                    extras: list[bytes] | None = None) -> tuple[np.ndarray, np.ndarray, list[bytes]]:
        """Batch lookup: ``(values, missing_mask, keys)`` for a (B, n) batch.

        ``values[b]`` is the cached ``log q`` where known (0.0 placeholder
        where missing); ``missing_mask[b]`` is True for rows the caller must
        score and then :meth:`store_many`.
        """
        configs = np.atleast_2d(configs)
        B = configs.shape[0]
        keys = [
            self.key(configs[b], extras[b] if extras is not None else b"")
            for b in range(B)
        ]
        values = np.zeros(B, dtype=np.float64)
        missing = np.zeros(B, dtype=bool)
        for b, k in enumerate(keys):
            cached = self.get(k)
            if cached is None:
                missing[b] = True
            else:
                values[b] = cached
        return values, missing, keys

    def store_many(self, keys: list[bytes], missing: np.ndarray,
                   values: np.ndarray, computed: np.ndarray) -> np.ndarray:
        """Fill ``values[missing]`` from ``computed`` and cache them.

        ``computed`` holds one freshly scored value per True entry of
        ``missing`` (in row order).  Returns ``values`` for chaining.
        """
        rows = np.nonzero(missing)[0]
        for r, v in zip(rows, np.asarray(computed, dtype=np.float64)):
            values[r] = v
            self.put(keys[r], float(v))
        return values

    # ----------------------------------------------------------- lifecycle

    def invalidate(self) -> None:
        """Drop everything and open a new epoch (call after retraining)."""
        self._store.clear()
        self.version += 1

    # dict-like surface (tests and diagnostics) ---------------------------

    def clear(self) -> None:
        self._store.clear()

    def __contains__(self, key: bytes) -> bool:
        return key in self._store

    def __getitem__(self, key: bytes) -> float:
        return self._store[key]

    def __setitem__(self, key: bytes, value: float) -> None:
        self.put(key, value)

    def __len__(self) -> int:
        return len(self._store)

    def __bool__(self) -> bool:
        return bool(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CurrentLogQCache(n={len(self._store)}, version={self.version}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
