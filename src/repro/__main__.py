"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``   regenerate paper tables/figures (wraps run_all; same flags)
``report``        rebuild EXPERIMENTS.md from saved results
``info``          print version, subsystem inventory, and environment checks
``obs``           observability tools: ``report`` (trace digest), ``bench`` /
                  ``bench-compare`` (BENCH snapshots), ``dash`` / ``tail``
                  (live run-health views), ``export-trace`` (merge worker
                  JSONL traces into a Chrome trace-event timeline); live
                  HTTP serving is ``experiments --serve PORT`` (or
                  ``REPRO_OBS_PORT``) — /metrics, /healthz, /campaign,
                  /events
``tools``         repo hygiene: ``lint-api`` (grep for deprecated API paths)
"""

from __future__ import annotations

import sys

import numpy as np

import repro

_USAGE = """usage: python -m repro <command> [options]

commands:
  experiments [--full] [--only E1,E7] [--seed N]
              [--resume] [--resilience SPEC]
              [--serve PORT]                        regenerate tables/figures
                                                   (--serve: live /metrics,
                                                   /healthz, /campaign HTTP)
  report                                           rebuild EXPERIMENTS.md
  info                                             version + inventory
  obs <subcommand>                                 observability tools
  tools lint-api [root]                            fail on deprecated API use

obs subcommands:
  obs report trace.jsonl                 per-phase/health digest of a trace
  obs bench [--quick] [-o OUT]           run benches, emit BENCH_<n>.json
  obs bench-compare OLD NEW              diff snapshots, flag regressions
  obs dash trace.jsonl [--watch N]       status board for a running campaign
  obs tail trace.jsonl [-f]              follow a JSONL trace
  obs export-trace TRACE... [-o OUT]     merge traces into Chrome trace JSON
"""

_OBS_USAGE = """usage: python -m repro obs <subcommand> [options]

subcommands: report, bench, bench-compare, dash, tail, export-trace
(see --help on each)
"""


def _obs(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(_OBS_USAGE)
        return 0
    sub, rest = argv[0], argv[1:]
    if sub == "report":
        from repro.obs.report import main as obs_report_main

        return obs_report_main(rest)
    if sub == "bench":
        from repro.obs.bench import main_bench

        return main_bench(rest)
    if sub == "bench-compare":
        from repro.obs.bench import main_compare

        return main_compare(rest)
    if sub == "dash":
        from repro.obs.dash import main_dash

        return main_dash(rest)
    if sub == "tail":
        from repro.obs.dash import main_tail

        return main_tail(rest)
    if sub == "export-trace":
        from repro.obs.chrometrace import main_export

        return main_export(rest)
    print(f"unknown obs subcommand {sub!r}\n\n{_OBS_USAGE}", file=sys.stderr)
    return 2


def _tools(argv: list[str]) -> int:
    usage = "usage: python -m repro tools lint-api [root]"
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0
    sub, rest = argv[0], argv[1:]
    if sub == "lint-api":
        from repro.tools.lint import main as lint_main

        return lint_main(rest)
    print(f"unknown tools subcommand {sub!r}\n\n{usage}", file=sys.stderr)
    return 2


def _info() -> int:
    import scipy

    print(f"repro (DeepThermo reproduction) {repro.__version__}")
    print(f"numpy {np.__version__}, scipy {scipy.__version__}")
    subsystems = [
        ("lattice", "repro.lattice"),
        ("hamiltonians", "repro.hamiltonians"),
        ("nn", "repro.nn"),
        ("proposals", "repro.proposals"),
        ("sampling", "repro.sampling"),
        ("parallel", "repro.parallel"),
        ("dos", "repro.dos"),
        ("analysis", "repro.analysis"),
        ("training", "repro.training"),
        ("machine", "repro.machine"),
        ("experiments", "repro.experiments"),
    ]
    import importlib

    for name, module_path in subsystems:
        module = importlib.import_module(module_path)
        exported = len(getattr(module, "__all__", []))
        print(f"  {name:<14} {exported:>3} public symbols")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "experiments":
        from repro.experiments.run_all import main as run_all_main

        return run_all_main(rest)
    if command == "report":
        from repro.experiments.report import main as report_main

        return report_main(rest)
    if command == "info":
        return _info()
    if command == "obs":
        return _obs(rest)
    if command == "tools":
        return _tools(rest)
    print(f"unknown command {command!r}\n\n{_USAGE}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
