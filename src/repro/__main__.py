"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``experiments``   regenerate paper tables/figures (wraps run_all; same flags)
``report``        rebuild EXPERIMENTS.md from saved results
``info``          print version, subsystem inventory, and environment checks
"""

from __future__ import annotations

import sys

import numpy as np

import repro

_USAGE = """usage: python -m repro <command> [options]

commands:
  experiments [--full] [--only E1,E7] [--seed N]   regenerate tables/figures
  report                                           rebuild EXPERIMENTS.md
  info                                             version + inventory
"""


def _info() -> int:
    import scipy

    print(f"repro (DeepThermo reproduction) {repro.__version__}")
    print(f"numpy {np.__version__}, scipy {scipy.__version__}")
    subsystems = [
        ("lattice", "repro.lattice"),
        ("hamiltonians", "repro.hamiltonians"),
        ("nn", "repro.nn"),
        ("proposals", "repro.proposals"),
        ("sampling", "repro.sampling"),
        ("parallel", "repro.parallel"),
        ("dos", "repro.dos"),
        ("analysis", "repro.analysis"),
        ("training", "repro.training"),
        ("machine", "repro.machine"),
        ("experiments", "repro.experiments"),
    ]
    import importlib

    for name, module_path in subsystems:
        module = importlib.import_module(module_path)
        exported = len(getattr(module, "__all__", []))
        print(f"  {name:<14} {exported:>3} public symbols")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "experiments":
        from repro.experiments.run_all import main as run_all_main

        return run_all_main(rest)
    if command == "report":
        from repro.experiments.report import main as report_main

        return report_main(rest)
    if command == "info":
        return _info()
    print(f"unknown command {command!r}\n\n{_USAGE}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
