"""Streaming (chunked) pair-model evaluation for ultra-large lattices.

:class:`ChunkedPairTables` is the ultra-large-scale counterpart of
:class:`repro.kernels.tables.PairTables`: instead of materializing the full
``(N, z)`` neighbor tables, it rebuilds neighbor rows for fixed-size site
blocks straight from the lattice offset catalog
(:meth:`repro.lattice.structures.Lattice.neighbor_block`) and accumulates
**integer directed pair counts** per shell.  Energies come from the count
contraction::

    E = 1/2 · Σ_s Σ_{a,b} C_s[a,b] · V_s[a,b]  +  Σ_a field[a] · n_a

Because the per-shell counts ``C_s`` are exact int64 sums, they are
independent of how the sites are split into blocks — chunked and unchunked
evaluation are **bit-identical** for any chunk size (chunk = 1, chunk > N,
anything between; property-tested).  Note the contraction is a different
float summation *order* than the pair-gather in :func:`repro.kernels.ops.
energy`, so the two agree to float tolerance, not bit-for-bit — within this
class, results are chunk-invariant bits.

Peak memory is O(chunk · z) regardless of ``n_sites``; the block size comes
from the :mod:`repro.machine.memory` planner so peak RSS is bounded by the
budget, not the lattice.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.ops import _as_int_configs
from repro.machine.memory import DEFAULT_CHUNK_BUDGET_BYTES, plan_chunk_sites

__all__ = ["ChunkedPairTables"]


class ChunkedPairTables:
    """Streaming pair-model evaluator over site blocks.

    Parameters
    ----------
    lattice : repro.lattice.structures.Lattice
        Supplies the offset catalog; no (N, z) table is ever built.
    shell_matrices : sequence of (n_species, n_species) symmetric arrays
        One interaction matrix per shell, innermost first.
    field : (n_species,) array or None
        On-site energy per species.
    chunk_sites : int, optional
        Fixed block size; overrides the planner.
    budget_bytes : int
        Working-set budget handed to :func:`repro.machine.memory.
        plan_chunk_sites` when ``chunk_sites`` is not given.
    """

    def __init__(self, lattice, shell_matrices, field=None, *,
                 chunk_sites: int | None = None,
                 budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES):
        mats = [np.asarray(m, dtype=np.float64) for m in shell_matrices]
        self.lattice = lattice
        self.shell_matrices = tuple(mats)
        self.n_species = mats[0].shape[0]
        self.n_shells = len(mats)
        self.field = None if field is None else np.asarray(field, dtype=np.float64)
        self.shell_info = lattice.shell_info(self.n_shells)
        coordinations = [z for _d, z in self.shell_info]
        self.plan = plan_chunk_sites(
            lattice.n_sites, coordinations, self.n_species,
            budget_bytes=budget_bytes,
        )
        if chunk_sites is not None:
            chunk_sites = int(chunk_sites)
            if chunk_sites < 1:
                raise ValueError(f"chunk_sites must be >= 1, got {chunk_sites}")
            self.chunk_sites = min(chunk_sites, lattice.n_sites)
        else:
            self.chunk_sites = self.plan.chunk_sites
        self.n_sites = lattice.n_sites

    def __repr__(self) -> str:
        return (
            f"ChunkedPairTables(n_sites={self.n_sites}, "
            f"n_shells={self.n_shells}, n_species={self.n_species}, "
            f"chunk_sites={self.chunk_sites})"
        )

    # ------------------------------------------------------------- streaming

    def iter_blocks(self):
        """Yield ``(start, stop, [per-shell (stop-start, z) int32 rows])``."""
        for start in range(0, self.n_sites, self.chunk_sites):
            stop = min(start + self.chunk_sites, self.n_sites)
            yield start, stop, self.lattice.neighbor_block(self.n_shells, start, stop)

    def pair_counts(self, config: np.ndarray) -> np.ndarray:
        """Directed per-shell pair counts, shape ``(n_shells, S, S)`` int64.

        ``counts[s, a, b]`` counts ordered (site of species *a*, shell-*s*
        neighbor of species *b*) pairs — exactly what
        :func:`repro.analysis.sro.pair_counts` computes from a materialized
        table, accumulated here in O(chunk · z) memory.  Integer sums are
        associative, so the result is identical for every chunk size.
        """
        config = _as_int_configs(config)
        if config.shape != (self.n_sites,):
            raise ValueError(
                f"config must have shape ({self.n_sites},), got {config.shape}"
            )
        S = self.n_species
        counts = np.zeros((self.n_shells, S, S), dtype=np.int64)  # lint-api: allow
        for start, stop, tables in self.iter_blocks():
            species_i = config[start:stop].astype(np.int64)
            for s, tab in enumerate(tables):
                flat = species_i[:, None] * S + config[tab]
                counts[s] += np.bincount(
                    flat.reshape(-1), minlength=S * S
                ).reshape(S, S)
        return counts

    # --------------------------------------------------------------- energies

    def _contract(self, counts: np.ndarray) -> float:
        """Fixed-order count → energy contraction (chunk-invariant bits)."""
        total = 0.0
        for s, m in enumerate(self.shell_matrices):
            # Directed counts double-count each undirected bond.
            total += 0.5 * float(np.sum(counts[s] * m))
        return total

    def energy(self, config: np.ndarray) -> float:
        """Total energy of one config via streaming count contraction."""
        config = _as_int_configs(config)
        total = self._contract(self.pair_counts(config))
        if self.field is not None:
            occ = np.bincount(config, minlength=self.n_species)
            total += float(np.sum(occ * self.field))
        return float(total)

    def energies(self, configs: np.ndarray) -> np.ndarray:
        """Energies of a config batch, ``(B, n_sites) -> (B,)``.

        Streams the same site blocks once for the whole batch; the gathered
        intermediates scale with B (see ``batch=`` in the chunk planner).
        """
        configs = np.atleast_2d(_as_int_configs(configs))
        B = configs.shape[0]
        if configs.shape[1] != self.n_sites:
            raise ValueError(
                f"configs must have {self.n_sites} columns, got {configs.shape[1]}"
            )
        S = self.n_species
        counts = np.zeros((B, self.n_shells, S, S), dtype=np.int64)  # lint-api: allow
        row_off = np.arange(B, dtype=np.int64)[:, None, None] * (S * S)  # lint-api: allow
        for start, stop, tables in self.iter_blocks():
            species_i = configs[:, start:stop].astype(np.int64)
            for s, tab in enumerate(tables):
                flat = row_off + species_i[:, :, None] * S + configs[:, tab]
                counts[:, s] += np.bincount(
                    flat.reshape(-1), minlength=B * S * S
                ).reshape(B, S, S)
        out = np.empty(B, dtype=np.float64)
        for b in range(B):
            out[b] = self._contract(counts[b])
        if self.field is not None:
            for b in range(B):
                occ = np.bincount(configs[b], minlength=S)
                out[b] += float(np.sum(occ * self.field))
        return out
