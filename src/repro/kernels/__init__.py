"""repro.kernels — the vectorized compute layer under the Hamiltonians.

DeepThermo's throughput premise (and the data-driven HEA MC literature it
builds on) is that flat-histogram sampling lives or dies on the ΔE hot
path.  This package centralizes that hot path:

- :class:`PairTables` — per-model precomputed neighbor index tables,
  difference-row ΔE lookup tables, and bond-correction stacks;
- :mod:`repro.kernels.ops` — scalar, ``*_alternatives`` (one config, many
  hypothetical moves) and ``*_many`` (many configs, one move each)
  energy/ΔE kernels, all O(z) numpy gathers with no Python per-neighbor
  loop;
- :class:`ChunkedPairTables` — the ultra-large-scale streaming evaluator:
  full energies and SRO pair counts in O(chunk · z) memory via integer
  count contraction, bit-identical across chunk sizes.

The Hamiltonians in :mod:`repro.hamiltonians` delegate here; samplers never
import this package directly — batched stepping reaches it through the
``Hamiltonian`` batched API (``energies``, ``delta_energy_*_batch``,
``delta_energy_*_many``).
"""

from repro.kernels import ops
from repro.kernels.chunked import ChunkedPairTables
from repro.kernels.tables import PairTables

__all__ = ["PairTables", "ChunkedPairTables", "ops"]
