"""Vectorized energy / delta-energy kernels over :class:`PairTables`.

These free functions are the single implementation of the pair-model hot
path; :class:`repro.hamiltonians.pair.PairHamiltonian` delegates every
energy method here.  Three shapes of batching appear, named consistently:

- *scalar* (``energy``, ``delta_swap``, ``delta_flip``) — one config, one
  move.  These are kept **operation-for-operation identical** to the
  pre-kernel implementations so single-walker trajectories stay
  bit-identical (tested in ``tests/test_batched_wl.py``).
- ``*_alternatives`` — one config, many *hypothetical* moves; every ΔE is
  relative to the same starting configuration (multiple-try MC, DL
  proposal re-scoring).
- ``*_many`` — a batch of configs, one move per config; this is the
  batched multi-walker WL stepping shape (each row is an independent
  walker).

All batched kernels are pure numpy gathers with no Python per-neighbor or
per-shell loop: species keys from the fused ``cat_table`` index one
``diff_rows`` row per move, and swap kernels price shared i–j bonds via the
column-indexed ``corr_by_col`` stack.

Dtype discipline (DESIGN.md §17): configurations are **int8 end to end**.
The kernels never up-cast them — species gathered from an int8 config stay
int8 (fancy indexing accepts any integer dtype), and adding the int16
``shell_offsets`` promotes keys only to int16.  The old per-call
``astype(int64)`` copies cost ``8 × B × n_sites`` bytes of traffic
per super-step at campaign scale; a float-dtype config is a caller bug and
raises instead of being silently truncated.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.tables import PairTables

__all__ = [
    "energy",
    "energies",
    "delta_swap",
    "delta_flip",
    "delta_swap_alternatives",
    "delta_flip_alternatives",
    "delta_swap_many",
    "delta_flip_many",
    "pair_count_deltas_swap",
    "pair_count_deltas_swap_alternatives",
]


def _as_int_configs(configs) -> np.ndarray:
    """View ``configs`` as an array without copying; reject non-integer
    dtypes (a float config would silently mis-index the lookup tables)."""
    configs = np.asarray(configs)
    if configs.dtype.kind not in "iu":
        raise TypeError(
            f"configurations must have an integer dtype (int8 preferred), "
            f"got {configs.dtype}"
        )
    return configs


# ------------------------------------------------------------------ energy


def energy(t: PairTables, config: np.ndarray) -> float:
    """Total energy: one fancy-indexing pass per shell, no Python loops."""
    config = _as_int_configs(config)
    total = 0.0
    for m, pi, pj in zip(t.shell_matrices, t.pair_i, t.pair_j):
        total += m[config[pi], config[pj]].sum()
    if t.field is not None:
        total += t.field[config].sum()
    return float(total)


def energies(t: PairTables, configs: np.ndarray) -> np.ndarray:
    """Energies of a config batch, shape ``(B, n_sites) -> (B,)``."""
    configs = np.atleast_2d(_as_int_configs(configs))
    total = np.zeros(configs.shape[0], dtype=np.float64)
    for m, pi, pj in zip(t.shell_matrices, t.pair_i, t.pair_j):
        total += m[configs[:, pi], configs[:, pj]].sum(axis=1)
    if t.field is not None:
        total += t.field[configs].sum(axis=1)
    return total


# ------------------------------------------------------- scalar incremental


def delta_swap(t: PairTables, config: np.ndarray, i: int, j: int) -> float:
    """O(z) ΔE of swapping sites ``i`` and ``j`` (bit-exact scalar path)."""
    a = int(config[i])
    b = int(config[j])
    if a == b or i == j:
        return 0.0
    row = t.diff_rows[a, b]
    nbr_i = t.cat_table[i]
    keys_i = config[nbr_i] + t.shell_offsets
    keys_j = config[t.cat_table[j]] + t.shell_offsets
    delta = row[keys_i].sum() - row[keys_j].sum()
    # The i-j bond (when present in a shell) was double-handled above.
    hits = nbr_i == j
    if hits.any():
        for col in np.nonzero(hits)[0]:
            delta -= t.bond_corr[t.shell_of_col[col]][a, b]
    return float(delta)


def delta_flip(t: PairTables, config: np.ndarray, site: int, new_species: int) -> float:
    """O(z) ΔE of repainting ``site`` to ``new_species`` (bit-exact)."""
    old = int(config[site])
    new = int(new_species)
    if old == new:
        return 0.0
    keys = config[t.cat_table[site]] + t.shell_offsets
    delta = t.diff_rows[old, new][keys].sum()
    if t.field is not None:
        delta += t.field[new] - t.field[old]
    return float(delta)


# ------------------------------------------- one config, many alternatives


def delta_swap_alternatives(t: PairTables, config: np.ndarray, ii, jj) -> np.ndarray:
    """ΔE for many independent *alternative* swaps on one config.

    Every ΔE is relative to the same starting ``config``; shape
    ``(M,), (M,) -> (M,)``.
    """
    config = _as_int_configs(config)
    ii = np.asarray(ii)
    jj = np.asarray(jj)
    aa = config[ii]
    bb = config[jj]
    rows = t.diff_rows[aa, bb]                       # (M, S*n_shells)
    nbr_i = t.cat_table[ii]                          # (M, Z)
    keys_i = config[nbr_i] + t.shell_offsets
    keys_j = config[t.cat_table[jj]] + t.shell_offsets
    delta = (
        np.take_along_axis(rows, keys_i, axis=1).sum(axis=1)
        - np.take_along_axis(rows, keys_j, axis=1).sum(axis=1)
    )
    hits = nbr_i == jj[:, None]                      # (M, Z)
    if hits.any():
        delta -= (hits * t.corr_by_col[:, aa, bb].T).sum(axis=1)
    same = (aa == bb) | (ii == jj)
    delta[same] = 0.0
    return delta


def delta_flip_alternatives(t: PairTables, config: np.ndarray, sites, new_species) -> np.ndarray:
    """ΔE for many independent *alternative* flips on one config."""
    config = _as_int_configs(config)
    sites = np.asarray(sites)
    new = np.asarray(new_species)
    old = config[sites]
    rows = t.diff_rows[old, new]                     # (M, S*n_shells)
    keys = config[t.cat_table[sites]] + t.shell_offsets
    delta = np.take_along_axis(rows, keys, axis=1).sum(axis=1)
    if t.field is not None:
        delta += t.field[new] - t.field[old]
    delta[old == new] = 0.0
    return delta


# ------------------------------------------- config batch, one move per row


def delta_swap_many(t: PairTables, configs: np.ndarray, ii, jj) -> np.ndarray:
    """ΔE of one swap per config row: ``(B, n_sites), (B,), (B,) -> (B,)``.

    The multi-walker stepping kernel: row ``b`` prices the swap
    ``(ii[b], jj[b])`` on walker ``b``'s configuration.  Configs are
    consumed at their native (int8) dtype — no up-cast copies.
    """
    configs = np.atleast_2d(_as_int_configs(configs))
    ii = np.asarray(ii)
    jj = np.asarray(jj)
    rows_idx = np.arange(configs.shape[0])
    aa = configs[rows_idx, ii]
    bb = configs[rows_idx, jj]
    rows = t.diff_rows[aa, bb]                       # (B, S*n_shells)
    nbr_i = t.cat_table[ii]                          # (B, Z)
    keys_i = configs[rows_idx[:, None], nbr_i] + t.shell_offsets
    keys_j = configs[rows_idx[:, None], t.cat_table[jj]] + t.shell_offsets
    delta = (
        np.take_along_axis(rows, keys_i, axis=1).sum(axis=1)
        - np.take_along_axis(rows, keys_j, axis=1).sum(axis=1)
    )
    hits = nbr_i == jj[:, None]                      # (B, Z)
    if hits.any():
        delta -= (hits * t.corr_by_col[:, aa, bb].T).sum(axis=1)
    same = (aa == bb) | (ii == jj)
    delta[same] = 0.0
    return delta


def delta_flip_many(t: PairTables, configs: np.ndarray, sites, new_species) -> np.ndarray:
    """ΔE of one flip per config row: ``(B, n_sites), (B,), (B,) -> (B,)``."""
    configs = np.atleast_2d(_as_int_configs(configs))
    sites = np.asarray(sites)
    new = np.asarray(new_species)
    rows_idx = np.arange(configs.shape[0])
    old = configs[rows_idx, sites]
    rows = t.diff_rows[old, new]                     # (B, S*n_shells)
    keys = configs[rows_idx[:, None], t.cat_table[sites]] + t.shell_offsets
    delta = np.take_along_axis(rows, keys, axis=1).sum(axis=1)
    if t.field is not None:
        delta += t.field[new] - t.field[old]
    delta[old == new] = 0.0
    return delta


# -------------------------------------------------- SRO pair-count deltas


def pair_count_deltas_swap(t: PairTables, config: np.ndarray,
                           i: int, j: int) -> np.ndarray:
    """O(z) change in per-shell directed pair counts for swapping ``i, j``.

    Returns a ``(n_shells, n_species, n_species)`` int64 delta ``D`` such
    that ``pair_counts(config_after, shell_table_s) ==
    pair_counts(config_before, shell_table_s) + D[s]`` for every shell —
    the incremental update the SRO-targeted structure generator
    (:mod:`repro.lattice.generate`) anneals on instead of energies.
    """
    config = _as_int_configs(config)
    a = int(config[i])
    b = int(config[j])
    S = t.n_species
    n_shells = t.n_shells
    D = np.zeros((n_shells, S, S), dtype=np.int64)  # lint-api: allow
    if a == b or i == j:
        return D
    shell_of_col = t.shell_of_col
    nbr_i = t.cat_table[i]
    nbr_j = t.cat_table[j]
    # Per-shell species histograms of each endpoint's neighbors (one
    # bincount over the fused row, shell-resolved via the column offsets).
    ni = np.bincount(shell_of_col * S + config[nbr_i],
                     minlength=n_shells * S).reshape(n_shells, S)
    nj = np.bincount(shell_of_col * S + config[nbr_j],
                     minlength=n_shells * S).reshape(n_shells, S)
    # Repaint i: a -> b against stale neighbor species (both directions).
    D[:, a, :] -= ni
    D[:, b, :] += ni
    D[:, :, a] -= ni
    D[:, :, b] += ni
    # Repaint j: b -> a.
    D[:, b, :] -= nj
    D[:, a, :] += nj
    D[:, :, b] -= nj
    D[:, :, a] += nj
    # Each direct i-j bond was double-handled with stale endpoint species;
    # its true contribution is unchanged by the swap ((a,b)+(b,a) before
    # and after), so back out the spurious terms per shell.
    hits = nbr_i == j
    if hits.any():
        m = np.bincount(shell_of_col[hits], minlength=n_shells)
        D[:, a, b] += 2 * m
        D[:, b, a] += 2 * m
        D[:, a, a] -= 2 * m
        D[:, b, b] -= 2 * m
    return D


def pair_count_deltas_swap_alternatives(t: PairTables, config: np.ndarray,
                                        ii, jj) -> np.ndarray:
    """Pair-count deltas for many *alternative* swaps on one config.

    Batched :func:`pair_count_deltas_swap`: ``(M,), (M,) ->
    (M, n_shells, n_species, n_species)`` int64, every delta relative to
    the same starting ``config`` (rows with ``a == b`` or ``i == j`` are
    zero).  This is the candidate-pricing kernel of the SRO-targeted
    generator — M hypothetical configurations priced per numpy pass.
    """
    config = _as_int_configs(config)
    ii = np.asarray(ii)
    jj = np.asarray(jj)
    M = ii.shape[0]
    S = t.n_species
    n_shells = t.n_shells
    aa = config[ii].astype(np.int64)
    bb = config[jj].astype(np.int64)
    shell_of_col = t.shell_of_col.astype(np.int64)
    nbr_i = t.cat_table[ii]                          # (M, Z)
    nbr_j = t.cat_table[jj]
    rows = np.arange(M)
    # Row-wise shell-resolved neighbor histograms via one flat bincount.
    base = rows[:, None] * (n_shells * S)
    ni = np.bincount((base + shell_of_col * S + config[nbr_i]).reshape(-1),
                     minlength=M * n_shells * S).reshape(M, n_shells, S)
    nj = np.bincount((base + shell_of_col * S + config[nbr_j]).reshape(-1),
                     minlength=M * n_shells * S).reshape(M, n_shells, S)
    D = np.zeros((M, n_shells, S, S), dtype=np.int64)  # lint-api: allow
    # Per-statement indices (row, species) are unique per row, so the
    # fancy-indexed in-place updates never collide within a statement.
    D[rows, :, aa, :] -= ni
    D[rows, :, bb, :] += ni
    D[rows, :, :, aa] -= ni
    D[rows, :, :, bb] += ni
    D[rows, :, bb, :] -= nj
    D[rows, :, aa, :] += nj
    D[rows, :, :, bb] -= nj
    D[rows, :, :, aa] += nj
    hits = nbr_i == jj[:, None]                      # (M, Z)
    if hits.any():
        m = np.bincount(
            (rows[:, None] * n_shells + shell_of_col[None, :])[hits],
            minlength=M * n_shells,
        ).reshape(M, n_shells)
        D[rows, :, aa, bb] += 2 * m
        D[rows, :, bb, aa] += 2 * m
        D[rows, :, aa, aa] -= 2 * m
        D[rows, :, bb, bb] -= 2 * m
    same = (aa == bb) | (ii == jj)
    D[same] = 0
    return D
