"""Vectorized energy / delta-energy kernels over :class:`PairTables`.

These free functions are the single implementation of the pair-model hot
path; :class:`repro.hamiltonians.pair.PairHamiltonian` delegates every
energy method here.  Three shapes of batching appear, named consistently:

- *scalar* (``energy``, ``delta_swap``, ``delta_flip``) — one config, one
  move.  These are kept **operation-for-operation identical** to the
  pre-kernel implementations so single-walker trajectories stay
  bit-identical (tested in ``tests/test_batched_wl.py``).
- ``*_alternatives`` — one config, many *hypothetical* moves; every ΔE is
  relative to the same starting configuration (multiple-try MC, DL
  proposal re-scoring).
- ``*_many`` — a batch of configs, one move per config; this is the
  batched multi-walker WL stepping shape (each row is an independent
  walker).

All batched kernels are pure numpy gathers with no Python per-neighbor or
per-shell loop: species keys from the fused ``cat_table`` index one
``diff_rows`` row per move, and swap kernels price shared i–j bonds via the
column-indexed ``corr_by_col`` stack.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.tables import PairTables

__all__ = [
    "energy",
    "energies",
    "delta_swap",
    "delta_flip",
    "delta_swap_alternatives",
    "delta_flip_alternatives",
    "delta_swap_many",
    "delta_flip_many",
]


# ------------------------------------------------------------------ energy


def energy(t: PairTables, config: np.ndarray) -> float:
    """Total energy: one fancy-indexing pass per shell, no Python loops."""
    config = np.asarray(config)
    total = 0.0
    for m, pi, pj in zip(t.shell_matrices, t.pair_i, t.pair_j):
        total += m[config[pi], config[pj]].sum()
    if t.field is not None:
        total += t.field[config].sum()
    return float(total)


def energies(t: PairTables, configs: np.ndarray) -> np.ndarray:
    """Energies of a config batch, shape ``(B, n_sites) -> (B,)``."""
    configs = np.atleast_2d(np.asarray(configs))
    total = np.zeros(configs.shape[0], dtype=np.float64)
    for m, pi, pj in zip(t.shell_matrices, t.pair_i, t.pair_j):
        total += m[configs[:, pi], configs[:, pj]].sum(axis=1)
    if t.field is not None:
        total += t.field[configs].sum(axis=1)
    return total


# ------------------------------------------------------- scalar incremental


def delta_swap(t: PairTables, config: np.ndarray, i: int, j: int) -> float:
    """O(z) ΔE of swapping sites ``i`` and ``j`` (bit-exact scalar path)."""
    a = int(config[i])
    b = int(config[j])
    if a == b or i == j:
        return 0.0
    row = t.diff_rows[a, b]
    nbr_i = t.cat_table[i]
    keys_i = config[nbr_i] + t.shell_offsets
    keys_j = config[t.cat_table[j]] + t.shell_offsets
    delta = row[keys_i].sum() - row[keys_j].sum()
    # The i-j bond (when present in a shell) was double-handled above.
    hits = nbr_i == j
    if hits.any():
        for col in np.nonzero(hits)[0]:
            delta -= t.bond_corr[t.shell_of_col[col]][a, b]
    return float(delta)


def delta_flip(t: PairTables, config: np.ndarray, site: int, new_species: int) -> float:
    """O(z) ΔE of repainting ``site`` to ``new_species`` (bit-exact)."""
    old = int(config[site])
    new = int(new_species)
    if old == new:
        return 0.0
    keys = config[t.cat_table[site]] + t.shell_offsets
    delta = t.diff_rows[old, new][keys].sum()
    if t.field is not None:
        delta += t.field[new] - t.field[old]
    return float(delta)


# ------------------------------------------- one config, many alternatives


def delta_swap_alternatives(t: PairTables, config: np.ndarray, ii, jj) -> np.ndarray:
    """ΔE for many independent *alternative* swaps on one config.

    Every ΔE is relative to the same starting ``config``; shape
    ``(M,), (M,) -> (M,)``.
    """
    config = np.asarray(config)
    ii = np.asarray(ii, dtype=np.int64)
    jj = np.asarray(jj, dtype=np.int64)
    aa = config[ii].astype(np.int64)
    bb = config[jj].astype(np.int64)
    rows = t.diff_rows[aa, bb]                       # (M, S*n_shells)
    nbr_i = t.cat_table[ii]                          # (M, Z)
    keys_i = config[nbr_i] + t.shell_offsets
    keys_j = config[t.cat_table[jj]] + t.shell_offsets
    delta = (
        np.take_along_axis(rows, keys_i, axis=1).sum(axis=1)
        - np.take_along_axis(rows, keys_j, axis=1).sum(axis=1)
    )
    hits = nbr_i == jj[:, None]                      # (M, Z)
    if hits.any():
        delta -= (hits * t.corr_by_col[:, aa, bb].T).sum(axis=1)
    same = (aa == bb) | (ii == jj)
    delta[same] = 0.0
    return delta


def delta_flip_alternatives(t: PairTables, config: np.ndarray, sites, new_species) -> np.ndarray:
    """ΔE for many independent *alternative* flips on one config."""
    config = np.asarray(config)
    sites = np.asarray(sites, dtype=np.int64)
    new = np.asarray(new_species, dtype=np.int64)
    old = config[sites].astype(np.int64)
    rows = t.diff_rows[old, new]                     # (M, S*n_shells)
    keys = config[t.cat_table[sites]] + t.shell_offsets
    delta = np.take_along_axis(rows, keys, axis=1).sum(axis=1)
    if t.field is not None:
        delta += t.field[new] - t.field[old]
    delta[old == new] = 0.0
    return delta


# ------------------------------------------- config batch, one move per row


def delta_swap_many(t: PairTables, configs: np.ndarray, ii, jj) -> np.ndarray:
    """ΔE of one swap per config row: ``(B, n_sites), (B,), (B,) -> (B,)``.

    The multi-walker stepping kernel: row ``b`` prices the swap
    ``(ii[b], jj[b])`` on walker ``b``'s configuration.
    """
    configs = np.atleast_2d(np.asarray(configs))
    ii = np.asarray(ii, dtype=np.int64)
    jj = np.asarray(jj, dtype=np.int64)
    rows_idx = np.arange(configs.shape[0])
    aa = configs[rows_idx, ii].astype(np.int64)
    bb = configs[rows_idx, jj].astype(np.int64)
    rows = t.diff_rows[aa, bb]                       # (B, S*n_shells)
    nbr_i = t.cat_table[ii]                          # (B, Z)
    keys_i = configs[rows_idx[:, None], nbr_i] + t.shell_offsets
    keys_j = configs[rows_idx[:, None], t.cat_table[jj]] + t.shell_offsets
    delta = (
        np.take_along_axis(rows, keys_i, axis=1).sum(axis=1)
        - np.take_along_axis(rows, keys_j, axis=1).sum(axis=1)
    )
    hits = nbr_i == jj[:, None]                      # (B, Z)
    if hits.any():
        delta -= (hits * t.corr_by_col[:, aa, bb].T).sum(axis=1)
    same = (aa == bb) | (ii == jj)
    delta[same] = 0.0
    return delta


def delta_flip_many(t: PairTables, configs: np.ndarray, sites, new_species) -> np.ndarray:
    """ΔE of one flip per config row: ``(B, n_sites), (B,), (B,) -> (B,)``."""
    configs = np.atleast_2d(np.asarray(configs))
    sites = np.asarray(sites, dtype=np.int64)
    new = np.asarray(new_species, dtype=np.int64)
    rows_idx = np.arange(configs.shape[0])
    old = configs[rows_idx, sites].astype(np.int64)
    rows = t.diff_rows[old, new]                     # (B, S*n_shells)
    keys = configs[rows_idx[:, None], t.cat_table[sites]] + t.shell_offsets
    delta = np.take_along_axis(rows, keys, axis=1).sum(axis=1)
    if t.field is not None:
        delta += t.field[new] - t.field[old]
    delta[old == new] = 0.0
    return delta
