"""Precomputed lookup tables for pair-interaction kernels.

Everything the vectorized kernels in :mod:`repro.kernels.ops` need is built
once per Hamiltonian and frozen here:

- **pair arrays** (``pair_i``/``pair_j``): every undirected bond of every
  shell, for the one-gather full-energy evaluation;
- **fused neighbor table** (``cat_table``): the per-shell neighbor tables
  concatenated column-wise, with per-column species-key offsets
  (``shell_offsets``) so a single row lookup prices a move across all
  shells at once;
- **difference rows** (``diff_rows``)::

      diff_rows[a, b, c + s*n_species] = V_s[b, c] - V_s[a, c]

  the per-neighbor ΔE contribution of repainting a site from species ``a``
  to ``b`` when the neighbor (in shell ``s``) carries species ``c``;
- **bond corrections** (``bond_corr`` per shell, and the column-indexed
  stack ``corr_by_col``)::

      bond_corr_s[a, b] = V_s[a, a] + V_s[b, b] - 2 V_s[a, b]

  subtracted once per shared bond when *both* endpoints of a swap are
  repainted (the two one-site terms double-handle the i–j bond).

The tables are plain numpy arrays (no views into caller state), so a
:class:`PairTables` pickles with the walkers through process executors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PairTables"]


class PairTables:
    """Frozen index/lookup tables for one pair Hamiltonian.

    Parameters
    ----------
    shells : sequence of NeighborShell
        One shell per interaction matrix, innermost first.
    shell_matrices : sequence of (n_species, n_species) symmetric arrays
    field : (n_species,) array or None
        On-site energy per species.
    """

    def __init__(self, shells, shell_matrices, field=None):
        mats = [np.asarray(m, dtype=np.float64) for m in shell_matrices]
        n_species = mats[0].shape[0]
        self.shell_matrices = tuple(mats)
        self.n_species = n_species
        self.n_shells = len(mats)
        self.field = None if field is None else np.asarray(field, dtype=np.float64)

        # Pair arrays (each undirected bond once) for the full-energy gather.
        self.pair_i: list[np.ndarray] = []
        self.pair_j: list[np.ndarray] = []
        for shell in shells:
            pairs = shell.pairs()
            self.pair_i.append(np.ascontiguousarray(pairs[:, 0]))
            self.pair_j.append(np.ascontiguousarray(pairs[:, 1]))

        # Per-shell neighbor tables for the O(z) incremental updates.
        self.tables = [shell.table for shell in shells]

        # Per-shell "same-bond" correction term V[a,a] + V[b,b] - 2 V[a,b].
        self.bond_corr: list[np.ndarray] = []
        for m in mats:
            diag = np.diag(m)
            self.bond_corr.append(diag[:, None] + diag[None, :] - 2.0 * m)

        # Fused incremental-update structures: all shells concatenated into
        # one neighbor table, with species keys offset by shell so a single
        # gather + one row lookup prices a move (profiling showed the
        # per-shell loop dominated the MC step on this interpreter).
        self.cat_table = np.concatenate(self.tables, axis=1)
        self.shell_offsets = np.concatenate(
            [np.full(t.shape[1], s * n_species, dtype=np.int64)
             for s, t in enumerate(self.tables)]
        )
        self.shell_of_col = np.concatenate(
            [np.full(t.shape[1], s, dtype=np.int64) for s, t in enumerate(self.tables)]
        )
        # diff_rows[a, b, c + s*n_species] = V_s[b, c] - V_s[a, c]
        self.diff_rows = np.empty((n_species, n_species, n_species * len(mats)))
        for a in range(n_species):
            for b in range(n_species):
                self.diff_rows[a, b] = np.concatenate([m[b] - m[a] for m in mats])
        # Column-indexed bond-correction stack: corr_by_col[col] is the
        # bond_corr matrix of the shell that neighbor-column ``col`` belongs
        # to, so batched kernels can price bond hits without a shell loop.
        self.corr_by_col = np.stack(
            [self.bond_corr[s] for s in self.shell_of_col], axis=0
        ) if len(self.shell_of_col) else np.zeros((0, n_species, n_species))

    @property
    def n_neighbor_cols(self) -> int:
        """Total neighbor-table width (sum of shell coordination numbers)."""
        return self.cat_table.shape[1]

    def __repr__(self) -> str:
        return (
            f"PairTables(n_species={self.n_species}, n_shells={self.n_shells}, "
            f"n_neighbor_cols={self.n_neighbor_cols})"
        )
