"""Precomputed lookup tables for pair-interaction kernels.

Everything the vectorized kernels in :mod:`repro.kernels.ops` need is built
per Hamiltonian and frozen here:

- **pair arrays** (``pair_i``/``pair_j``): every undirected bond of every
  shell, for the one-gather full-energy evaluation;
- **fused neighbor table** (``cat_table``): the per-shell neighbor tables
  concatenated column-wise, with per-column species-key offsets
  (``shell_offsets``) so a single row lookup prices a move across all
  shells at once;
- **difference rows** (``diff_rows``)::

      diff_rows[a, b, c + s*n_species] = V_s[b, c] - V_s[a, c]

  the per-neighbor ΔE contribution of repainting a site from species ``a``
  to ``b`` when the neighbor (in shell ``s``) carries species ``c``;
- **bond corrections** (``bond_corr`` per shell, and the column-indexed
  stack ``corr_by_col``)::

      bond_corr_s[a, b] = V_s[a, a] + V_s[b, b] - 2 V_s[a, b]

  subtracted once per shared bond when *both* endpoints of a swap are
  repainted (the two one-site terms double-handle the i–j bond).

Memory model (DESIGN.md §17): the index tables are the dominant footprint
at ultra-large N, so every derived structure is **lazy** (built and cached
on first use — a run that only ever prices swaps never materializes the
pair arrays, and a full-energy-only run never builds the fused table) and
**lean** (site indices are int32, species keys int16; configurations stay
int8 end to end — the kernels never up-cast them).  For streaming
evaluation that never materializes any (N, z) table at all, see
:class:`repro.kernels.chunked.ChunkedPairTables`.

The tables are plain numpy arrays (no views into caller state), so a
:class:`PairTables` pickles with the walkers through process executors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PairTables", "INDEX_DTYPE", "KEY_DTYPE"]

#: Site indices in neighbor/pair tables.  int32 addresses 2·10⁹ sites —
#: far beyond the 10⁶-site ultra-large tier — at half the bandwidth and
#: memory of the int64 tables this module used to build.
INDEX_DTYPE = np.int32

#: Species keys into ``diff_rows`` (bounded by n_species · n_shells, so a
#: 2-byte integer is generous; int8 configs promote to this on addition).
KEY_DTYPE = np.int16


def _lazy(build):
    """Cache-on-first-access property: the decorated builder runs once and
    its result is pinned into the instance ``__dict__`` (pickles carry
    whatever was materialized, nothing more)."""
    name = build.__name__

    def getter(self):
        cache = self._cache
        if name not in cache:
            cache[name] = build(self)
        return cache[name]

    getter.__name__ = name
    getter.__doc__ = build.__doc__
    return property(getter)


class PairTables:
    """Frozen index/lookup tables for one pair Hamiltonian.

    Construction is O(1): every derived table is built lazily on first
    access, so scalar-only runs never pay for the batched structures and
    incremental-only runs never pay for the full-energy pair arrays.

    Parameters
    ----------
    shells : sequence of NeighborShell
        One shell per interaction matrix, innermost first.
    shell_matrices : sequence of (n_species, n_species) symmetric arrays
    field : (n_species,) array or None
        On-site energy per species.
    """

    def __init__(self, shells, shell_matrices, field=None):
        mats = [np.asarray(m, dtype=np.float64) for m in shell_matrices]
        n_species = mats[0].shape[0]
        self.shell_matrices = tuple(mats)
        self.n_species = n_species
        self.n_shells = len(mats)
        self.field = None if field is None else np.asarray(field, dtype=np.float64)
        # Per-shell neighbor tables for the O(z) incremental updates.  The
        # lattice builds (and caches) these; everything else derives lazily.
        self.tables = [np.ascontiguousarray(s.table, dtype=INDEX_DTYPE)
                       if s.table.dtype != INDEX_DTYPE else s.table
                       for s in shells]
        self._shells = tuple(shells)
        self._cache: dict[str, object] = {}

    # ------------------------------------------------- full-energy structures

    @_lazy
    def pair_arrays(self):
        """Per-shell ``(pair_i, pair_j)`` undirected-bond arrays (lazy)."""
        pair_i, pair_j = [], []
        for shell in self._shells:
            pairs = shell.pairs()
            pair_i.append(np.ascontiguousarray(pairs[:, 0], dtype=INDEX_DTYPE))
            pair_j.append(np.ascontiguousarray(pairs[:, 1], dtype=INDEX_DTYPE))
        return pair_i, pair_j

    @property
    def pair_i(self) -> list[np.ndarray]:
        return self.pair_arrays[0]

    @property
    def pair_j(self) -> list[np.ndarray]:
        return self.pair_arrays[1]

    # ------------------------------------------------ incremental structures

    @_lazy
    def bond_corr(self):
        """Per-shell same-bond correction ``V[a,a] + V[b,b] - 2 V[a,b]``."""
        out = []
        for m in self.shell_matrices:
            diag = np.diag(m)
            out.append(diag[:, None] + diag[None, :] - 2.0 * m)
        return out

    @_lazy
    def cat_table(self):
        """All shells' neighbor tables concatenated column-wise (lazy).

        Fused incremental-update structure: one gather + one ``diff_rows``
        row lookup prices a move across all shells (profiling showed the
        per-shell loop dominated the MC step on this interpreter).
        """
        return np.concatenate(self.tables, axis=1)

    @_lazy
    def shell_offsets(self):
        """Per-column species-key offset ``s · n_species`` (int16)."""
        return np.concatenate(
            [np.full(t.shape[1], s * self.n_species, dtype=KEY_DTYPE)
             for s, t in enumerate(self.tables)]
        )

    @_lazy
    def shell_of_col(self):
        """Shell index of every fused-table column (int16)."""
        return np.concatenate(
            [np.full(t.shape[1], s, dtype=KEY_DTYPE)
             for s, t in enumerate(self.tables)]
        )

    @_lazy
    def diff_rows(self):
        """``diff_rows[a, b, c + s*n_species] = V_s[b, c] - V_s[a, c]``."""
        n_species = self.n_species
        mats = self.shell_matrices
        out = np.empty((n_species, n_species, n_species * len(mats)))
        for a in range(n_species):
            for b in range(n_species):
                out[a, b] = np.concatenate([m[b] - m[a] for m in mats])
        return out

    @_lazy
    def corr_by_col(self):
        """Column-indexed bond-correction stack: ``corr_by_col[col]`` is the
        ``bond_corr`` matrix of the shell that neighbor-column ``col``
        belongs to, so batched kernels can price bond hits without a shell
        loop."""
        shell_of_col = self.shell_of_col
        if not len(shell_of_col):
            return np.zeros((0, self.n_species, self.n_species))
        bond_corr = self.bond_corr
        return np.stack([bond_corr[s] for s in shell_of_col], axis=0)

    # ----------------------------------------------------------------- misc

    @property
    def n_neighbor_cols(self) -> int:
        """Total neighbor-table width (sum of shell coordination numbers)."""
        return sum(t.shape[1] for t in self.tables)

    def table_nbytes(self) -> int:
        """Bytes held by the *materialized* index/lookup structures so far.

        The per-site byte budget in DESIGN.md §17 is measured with this:
        it counts the shell tables plus whatever lazy structures the
        workload actually touched, which is exactly what the process pays.
        """
        total = sum(t.nbytes for t in self.tables)
        for value in self._cache.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, tuple):  # pair_arrays: (list, list)
                for part in value:
                    total += sum(a.nbytes for a in part)
            elif isinstance(value, list):
                total += sum(a.nbytes for a in value
                             if isinstance(a, np.ndarray))
        return int(total)

    def __getstate__(self):
        return self.__dict__

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_cache", {})

    def __repr__(self) -> str:
        return (
            f"PairTables(n_species={self.n_species}, n_shells={self.n_shells}, "
            f"n_neighbor_cols={self.n_neighbor_cols})"
        )
