"""Reusable forward/backward workspaces: preallocated layer intermediates.

The batched DL-proposal inference path calls the same model with the same
batch shape thousands of times per run (one forward per walker super-step).
Allocating every Dense output, activation mask, and one-hot encoding afresh
each call is pure allocator traffic — on this interpreter it shows up right
next to the matmuls in the profile.  A :class:`Workspace` is a keyed pool of
preallocated buffers: layers bound to one (via
:meth:`repro.nn.layers.Sequential.bind_workspace`) route their forward and
backward intermediates through ``np.matmul(..., out=...)``-style calls into
pooled arrays instead of fresh allocations.

Contracts:

- **Numerically identical**: ``out=`` variants of the same ufuncs/matmuls
  produce bit-identical results, so binding a workspace never changes
  sampled trajectories (property-tested in ``tests/test_dl_batched.py``).
- **Shape-keyed**: buffers are keyed by ``(owner key, shape, dtype)``, so a
  model alternating between a training batch shape and an inference batch
  shape keeps one steady-state buffer per shape instead of thrashing.
- **Borrowed, not owned**: a buffer returned by :meth:`take` is valid until
  the next ``take`` with the same key — i.e. until the owning layer's next
  forward (or backward) pass.  Layer outputs must therefore be consumed (or
  copied) before the same network runs again, which every in-repo caller
  already does; training's forward→backward ordering satisfies it too.

:func:`encode_one_hot` is the matching allocation-free batch encoder used by
the DL proposals and :meth:`ReplayBuffer.sample_one_hot
<repro.training.buffer.ReplayBuffer.sample_one_hot>`: a single fancy-indexed
scatter, no per-row Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace", "encode_one_hot"]


class Workspace:
    """Keyed pool of preallocated numpy buffers.

    ``take(key, shape, dtype)`` returns a buffer dedicated to ``(key, shape,
    dtype)``, allocating it on first use and reusing it afterwards.  Buffer
    contents are *not* cleared between takes — callers fully overwrite them
    (``out=`` semantics).
    """

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}

    def take(self, key, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Borrow the buffer for ``(key, shape, dtype)`` (allocate-once)."""
        shape = tuple(int(s) for s in shape)
        slot = (key, shape, np.dtype(dtype))
        buf = self._buffers.get(slot)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[slot] = buf
        return buf

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    def nbytes(self) -> int:
        """Total bytes currently pooled."""
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()

    def __repr__(self) -> str:
        return f"Workspace(n_buffers={self.n_buffers}, nbytes={self.nbytes()})"


def encode_one_hot(configs: np.ndarray, n_species: int,
                   workspace: Workspace | None = None,
                   key: str = "one_hot") -> np.ndarray:
    """One-hot encode a ``(B, n_sites)`` batch with a single scatter.

    Returns ``(B, n_sites, n_species)`` float64 — the same values, dtype and
    layout as stacking :func:`repro.lattice.configuration.one_hot` row by
    row, without the per-row Python loop.  With a ``workspace`` the output
    lands in a pooled buffer (valid until the next call with the same
    ``key`` and shape).
    """
    configs = np.asarray(configs)
    if configs.ndim == 1:
        configs = configs[None]
    if configs.ndim != 2:
        raise ValueError(f"expected a (B, n_sites) batch, got shape {configs.shape}")
    idx = configs.astype(np.int64, copy=False)
    if idx.size and (idx.min() < 0 or idx.max() >= n_species):
        raise ValueError(
            f"species indices out of range [0, {n_species}): "
            f"[{idx.min()}, {idx.max()}]"
        )
    B, n_sites = idx.shape
    shape = (B, n_sites, n_species)
    if workspace is not None:
        out = workspace.take(key, shape)
        out[...] = 0.0
    else:
        out = np.zeros(shape, dtype=np.float64)
    out[np.arange(B)[:, None], np.arange(n_sites)[None, :], idx] = 1.0
    return out
