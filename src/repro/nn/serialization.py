"""Parameter (de)serialization as ``.npz`` archives.

Used by the training loop to checkpoint proposal models and by the parallel
driver to broadcast refreshed model weights to walkers.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["save_params", "load_params", "params_to_bytes", "params_from_bytes"]


def _named(params: list[Parameter]) -> dict[str, np.ndarray]:
    out: dict[str, np.ndarray] = {}
    for k, p in enumerate(params):
        key = f"{k:03d}:{p.name}"
        out[key] = p.value
    return out


def save_params(params: list[Parameter], path) -> None:
    """Save parameter values to ``path`` (``.npz``)."""
    np.savez(Path(path), **_named(params))


def load_params(params: list[Parameter], path) -> None:
    """Load values saved by :func:`save_params` into ``params`` in place.

    The parameter list must match in order, names, and shapes.
    """
    with np.load(Path(path)) as archive:
        _assign(params, archive)


def params_to_bytes(params: list[Parameter]) -> bytes:
    """Serialize parameters to bytes (for communicator broadcast)."""
    buf = io.BytesIO()
    np.savez(buf, **_named(params))
    return buf.getvalue()


def params_from_bytes(params: list[Parameter], blob: bytes) -> None:
    """Inverse of :func:`params_to_bytes`, assigning in place."""
    with np.load(io.BytesIO(blob)) as archive:
        _assign(params, archive)


def _assign(params: list[Parameter], archive) -> None:
    keys = sorted(archive.files)
    if len(keys) != len(params):
        raise ValueError(
            f"checkpoint has {len(keys)} parameters, model has {len(params)}"
        )
    for key, p in zip(keys, params):
        name = key.split(":", 1)[1]
        if name != p.name:
            raise ValueError(f"parameter name mismatch: checkpoint {name!r} vs model {p.name!r}")
        value = archive[key]
        if value.shape != p.value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint {value.shape} vs model {p.value.shape}"
            )
        p.value[...] = value
