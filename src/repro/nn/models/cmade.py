"""Conditional MADE: one proposal model for every temperature / energy window.

DeepThermo's production setting runs *many* walkers at different
temperatures (parallel tempering) or in different energy windows (REWL).
Training one model per walker is wasteful; the standard solution is a
*conditional* autoregressive model ``q(x | c)`` where the conditioning
vector ``c`` encodes the walker's temperature or energy window.  The
conditioning inputs receive autoregressive degree 0, so every hidden unit
may see them while the site-to-site masks stay exactly autoregressive —
likelihoods remain exact per conditioning value.

The matching proposal lives in :class:`repro.proposals.dl_cmade.ConditionalMADEProposal`,
including the subtle state-dependent-conditioning correction (when ``c``
depends on the *current* configuration, the reverse move is conditioned on
the proposed one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.nn.layers import Dense, ReLU, Sequential
from repro.nn.losses import categorical_cross_entropy_from_logits
from repro.nn.optim import clip_gradients
from repro.util.numerics import log_softmax, softmax
from repro.util.rng import as_generator

__all__ = ["ConditionalMADEConfig", "ConditionalMADE"]


@dataclass(frozen=True)
class ConditionalMADEConfig:
    """Architecture hyperparameters for :class:`ConditionalMADE`."""

    n_sites: int
    n_species: int
    cond_dim: int
    hidden: tuple[int, ...] = (256,)

    def __post_init__(self):
        if self.n_sites < 1 or self.n_species < 2:
            raise ValueError(
                f"need n_sites >= 1 and n_species >= 2, got {self.n_sites}, {self.n_species}"
            )
        if self.cond_dim < 1:
            raise ValueError(f"cond_dim must be >= 1, got {self.cond_dim}")
        if not self.hidden:
            raise ValueError("at least one hidden layer is required")

    @property
    def x_dim(self) -> int:
        return self.n_sites * self.n_species

    @property
    def input_dim(self) -> int:
        return self.x_dim + self.cond_dim


def _build_masks(config: ConditionalMADEConfig) -> list[np.ndarray]:
    """MADE masks with degree-0 conditioning inputs (visible everywhere)."""
    n, s = config.n_sites, config.n_species
    in_deg = np.concatenate([
        np.repeat(np.arange(1, n + 1), s),
        np.zeros(config.cond_dim, dtype=np.int64),  # conditioning: degree 0
    ])
    hidden_degs = []
    max_hidden_deg = max(n - 1, 1)
    for width in config.hidden:
        hidden_degs.append(1 + np.arange(width) % max_hidden_deg)
    out_deg = np.repeat(np.arange(1, n + 1), s)

    masks = []
    prev = in_deg
    for deg in hidden_degs:
        masks.append((deg[None, :] >= prev[:, None]).astype(np.float64))
        prev = deg
    masks.append((out_deg[None, :] > prev[:, None]).astype(np.float64))
    return masks


class ConditionalMADE:
    """Exact-likelihood autoregressive model ``q(x | c)``.

    Parameters
    ----------
    config : ConditionalMADEConfig
    rng : seed or Generator

    All batched methods take a conditioning array of shape
    ``(B, cond_dim)`` (or ``(cond_dim,)``, broadcast over the batch).
    """

    def __init__(self, config: ConditionalMADEConfig, rng=None):
        self.config = config
        rng = as_generator(rng)
        masks = _build_masks(config)
        dims = [config.input_dim] + list(config.hidden) + [config.x_dim]
        layers: list = []
        for k, mask in enumerate(masks):
            is_last = k == len(masks) - 1
            init = zeros_init if is_last else he_normal
            layers.append(
                Dense(dims[k], dims[k + 1], rng, init=init, mask=mask, name=f"cmade{k}")
            )
            if not is_last:
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def parameters(self):
        return self.net.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def bind_workspace(self, workspace) -> None:
        """Preallocate layer intermediates in ``workspace``
        (see :mod:`repro.nn.workspace`)."""
        self.net.bind_workspace(workspace)

    # -------------------------------------------------------------- helpers

    def _check_x(self, x_onehot: np.ndarray) -> np.ndarray:
        x = np.asarray(x_onehot, dtype=np.float64)
        c = self.config
        if x.ndim == 2 and x.shape == (c.n_sites, c.n_species):
            x = x[None]
        if x.ndim != 3 or x.shape[1:] != (c.n_sites, c.n_species):
            raise ValueError(
                f"expected one-hot input of shape (B, {c.n_sites}, {c.n_species}), "
                f"got {np.asarray(x_onehot).shape}"
            )
        return x

    def _check_cond(self, cond: np.ndarray, batch: int) -> np.ndarray:
        cond = np.asarray(cond, dtype=np.float64)
        if cond.ndim == 1:
            cond = np.broadcast_to(cond, (batch, self.config.cond_dim))
        if cond.shape != (batch, self.config.cond_dim):
            raise ValueError(
                f"conditioning must have shape ({batch}, {self.config.cond_dim}), "
                f"got {cond.shape}"
            )
        return cond

    # -------------------------------------------------------------- forward

    def logits(self, x_onehot: np.ndarray, cond) -> np.ndarray:
        """Conditional logits, shape (B, n_sites, n_species)."""
        x = self._check_x(x_onehot)
        cond = self._check_cond(cond, x.shape[0])
        flat = np.concatenate([x.reshape(x.shape[0], -1), cond], axis=1)
        return self.net.forward(flat).reshape(x.shape)

    def log_prob(self, x_onehot: np.ndarray, cond) -> np.ndarray:
        """Exact ``log q(x | c)`` per batch row."""
        x = self._check_x(x_onehot)
        logp = log_softmax(self.logits(x, cond), axis=-1)
        return (logp * x).sum(axis=(1, 2))

    # ------------------------------------------------------------- training

    def train_step(self, x_onehot: np.ndarray, cond, optimizer,
                   max_grad_norm: float = 10.0) -> dict:
        """One conditional maximum-likelihood step; returns metrics."""
        x = self._check_x(x_onehot)
        cond = self._check_cond(cond, x.shape[0])
        self.zero_grad()
        flat = np.concatenate([x.reshape(x.shape[0], -1), cond], axis=1)
        logits = self.net.forward(flat).reshape(x.shape)
        loss, dlogits = categorical_cross_entropy_from_logits(logits, x)
        self.net.backward(dlogits.reshape(x.shape[0], -1))
        grad_norm = clip_gradients(self.parameters(), max_grad_norm)
        optimizer.step()
        return {"loss": loss, "grad_norm": grad_norm}

    # ------------------------------------------------------------- sampling

    def sample(self, n: int, cond, rng, return_log_prob: bool = False):
        """Draw ``n`` exact samples conditioned on ``cond``."""
        rng = as_generator(rng)
        c = self.config
        cond = self._check_cond(cond, n)
        x = np.zeros((n, c.n_sites, c.n_species), dtype=np.float64)
        configs = np.zeros((n, c.n_sites), dtype=np.int8)
        total_logp = np.zeros(n, dtype=np.float64)
        for i in range(c.n_sites):
            site_logits = self.logits(x, cond)[:, i]
            probs = softmax(site_logits, axis=-1)
            cdf = np.cumsum(probs, axis=-1)
            u = rng.random((n, 1))
            picks = (u > cdf).sum(axis=-1)
            np.clip(picks, 0, c.n_species - 1, out=picks)
            configs[:, i] = picks
            x[np.arange(n), i, picks] = 1.0
            if return_log_prob:
                logp = log_softmax(site_logits, axis=-1)
                total_logp += logp[np.arange(n), picks]
        if return_log_prob:
            return configs, total_logp
        return configs
