"""MADE: masked autoencoder for distribution estimation (Germain et al. 2015)
over multi-species lattice configurations.

Unlike the VAE, MADE gives *exact* likelihoods: the masked network factorizes
``q(x) = prod_i q(x_i | x_<i)`` so ``log q`` is a single forward pass, and
sampling is ``n_sites`` sequential forward passes.  In the proposal framework
this makes the Metropolis–Hastings correction exact (no importance-sampling
estimator), which is why MADE is the cross-check model for the VAE proposal
(experiment E5/E10 ablations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.initializers import he_normal, zeros_init
from repro.nn.layers import Dense, ReLU, Sequential
from repro.nn.losses import categorical_cross_entropy_from_logits
from repro.nn.optim import clip_gradients
from repro.util.numerics import log_softmax, softmax
from repro.util.rng import as_generator

__all__ = ["MADEConfig", "MADE"]


@dataclass(frozen=True)
class MADEConfig:
    """Architecture hyperparameters for :class:`MADE`."""

    n_sites: int
    n_species: int
    hidden: tuple[int, ...] = (256,)

    def __post_init__(self):
        if self.n_sites < 1 or self.n_species < 2:
            raise ValueError(
                f"need n_sites >= 1 and n_species >= 2, got {self.n_sites}, {self.n_species}"
            )
        if not self.hidden:
            raise ValueError("at least one hidden layer is required")

    @property
    def input_dim(self) -> int:
        return self.n_sites * self.n_species


def _build_masks(config: MADEConfig) -> list[np.ndarray]:
    """Autoregressive masks for input → hidden… → output.

    Degrees: input unit for site ``i`` has degree ``i + 1``; hidden units
    cycle through ``1 .. n_sites − 1`` (so every conditional gets hidden
    capacity); output units for site ``i`` have degree ``i + 1`` with the
    strict rule ``m_out > m_hidden``.  Site 0's output therefore connects to
    nothing — its logits are pure bias, i.e. ``q(x_0)`` is learned as a
    marginal, exactly as MADE prescribes.
    """
    n, s = config.n_sites, config.n_species
    in_deg = np.repeat(np.arange(1, n + 1), s)
    hidden_degs = []
    max_hidden_deg = max(n - 1, 1)
    for width in config.hidden:
        hidden_degs.append(1 + np.arange(width) % max_hidden_deg)
    out_deg = np.repeat(np.arange(1, n + 1), s)

    masks = []
    prev = in_deg
    for deg in hidden_degs:
        masks.append((deg[None, :] >= prev[:, None]).astype(np.float64))
        prev = deg
    masks.append((out_deg[None, :] > prev[:, None]).astype(np.float64))
    return masks


class MADE:
    """Masked autoregressive density estimator with exact ``log q``.

    Parameters
    ----------
    config : MADEConfig
    rng : seed or Generator
    """

    def __init__(self, config: MADEConfig, rng=None):
        self.config = config
        rng = as_generator(rng)
        masks = _build_masks(config)
        dims = [config.input_dim] + list(config.hidden) + [config.input_dim]
        layers: list = []
        for k, mask in enumerate(masks):
            is_last = k == len(masks) - 1
            init = zeros_init if is_last else he_normal
            layers.append(
                Dense(dims[k], dims[k + 1], rng, init=init, mask=mask, name=f"made{k}")
            )
            if not is_last:
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def parameters(self):
        return self.net.parameters()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def bind_workspace(self, workspace) -> None:
        """Preallocate layer intermediates in ``workspace``.

        Steady-state forwards (sampling, ``log_prob`` scoring, training)
        then reuse pooled buffers instead of allocating per call — see
        :mod:`repro.nn.workspace` for the borrowing contract.
        """
        self.net.bind_workspace(workspace)

    # -------------------------------------------------------------- forward

    def _check_input(self, x_onehot: np.ndarray) -> np.ndarray:
        x = np.asarray(x_onehot, dtype=np.float64)
        c = self.config
        if x.ndim == 2 and x.shape == (c.n_sites, c.n_species):
            x = x[None]
        if x.ndim != 3 or x.shape[1:] != (c.n_sites, c.n_species):
            raise ValueError(
                f"expected one-hot input of shape (B, {c.n_sites}, {c.n_species}), "
                f"got {np.asarray(x_onehot).shape}"
            )
        return x

    def logits(self, x_onehot: np.ndarray) -> np.ndarray:
        """Conditional logits, shape (B, n_sites, n_species).

        ``logits[:, i]`` depends only on sites ``< i`` of the input (the
        autoregressive property, numerically verified in the tests).
        """
        x = self._check_input(x_onehot)
        out = self.net.forward(x.reshape(x.shape[0], -1))
        return out.reshape(x.shape)

    def log_prob(self, x_onehot: np.ndarray) -> np.ndarray:
        """Exact ``log q(x)`` per batch row."""
        x = self._check_input(x_onehot)
        logp = log_softmax(self.logits(x), axis=-1)
        return (logp * x).sum(axis=(1, 2))

    # ------------------------------------------------------------- training

    def train_step(self, x_onehot: np.ndarray, optimizer, max_grad_norm: float = 10.0) -> dict:
        """One maximum-likelihood gradient step; returns metrics dict."""
        x = self._check_input(x_onehot)
        self.zero_grad()
        logits = self.net.forward(x.reshape(x.shape[0], -1)).reshape(x.shape)
        loss, dlogits = categorical_cross_entropy_from_logits(logits, x)
        self.net.backward(dlogits.reshape(x.shape[0], -1))
        grad_norm = clip_gradients(self.parameters(), max_grad_norm)
        optimizer.step()
        return {"loss": loss, "grad_norm": grad_norm}

    # ------------------------------------------------------------- sampling

    def sample(self, n: int, rng, return_log_prob: bool = False):
        """Draw ``n`` exact samples by sequential site-by-site decoding."""
        rng = as_generator(rng)
        c = self.config
        x = np.zeros((n, c.n_sites, c.n_species), dtype=np.float64)
        configs = np.zeros((n, c.n_sites), dtype=np.int8)
        total_logp = np.zeros(n, dtype=np.float64)
        for i in range(c.n_sites):
            site_logits = self.logits(x)[:, i]
            probs = softmax(site_logits, axis=-1)
            cdf = np.cumsum(probs, axis=-1)
            u = rng.random((n, 1))
            picks = (u > cdf).sum(axis=-1)
            np.clip(picks, 0, c.n_species - 1, out=picks)
            configs[:, i] = picks
            x[np.arange(n), i, picks] = 1.0
            if return_log_prob:
                logp = log_softmax(site_logits, axis=-1)
                total_logp += logp[np.arange(n), picks]
        if return_log_prob:
            return configs, total_logp
        return configs
