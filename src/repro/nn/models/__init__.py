"""Generative models used as MC proposal distributions."""

from repro.nn.models.vae import CategoricalVAE, VAEConfig
from repro.nn.models.made import MADE, MADEConfig
from repro.nn.models.cmade import ConditionalMADE, ConditionalMADEConfig

__all__ = ["CategoricalVAE", "VAEConfig", "MADE", "MADEConfig",
           "ConditionalMADE", "ConditionalMADEConfig"]
