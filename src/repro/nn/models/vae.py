"""Categorical variational autoencoder over lattice configurations.

This is the paper's headline proposal model: a VAE trained online on the
configurations visited by the Monte Carlo walkers.  Proposing a move means
drawing a latent ``z ~ N(0, I)`` and decoding a whole configuration — a
*global* update that decorrelates in O(1) steps where local swaps need O(N)
sweeps.

For the exact Metropolis–Hastings correction the sampler needs the proposal
density ``q(x) = E_{z~N(0,I)} p_dec(x | z)``, which is intractable; we
estimate ``log q(x)`` with the importance-weighted (IWAE) estimator using the
trained encoder as the importance distribution (``log_marginal``).  The MADE
model (:mod:`repro.nn.models.made`) provides *exact* densities and serves as
the cross-check for this estimator (experiment E5 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.initializers import glorot_uniform
from repro.nn.layers import Dense, Sequential, Tanh
from repro.nn.losses import categorical_cross_entropy_from_logits, gaussian_kl_divergence
from repro.nn.optim import clip_gradients
from repro.util.numerics import log_softmax, logsumexp, softmax
from repro.util.rng import as_generator

__all__ = ["VAEConfig", "CategoricalVAE"]

_LOGVAR_CLAMP = 15.0  # |logvar| clamp: keeps exp() finite on wild inputs


@dataclass(frozen=True)
class VAEConfig:
    """Architecture hyperparameters for :class:`CategoricalVAE`.

    Defaults follow the paper's regime: a small latent space relative to the
    configuration dimension and two hidden layers.
    """

    n_sites: int
    n_species: int
    latent_dim: int = 16
    hidden: tuple[int, ...] = (128, 64)
    beta: float = 1.0  # KL weight (beta-VAE generalization; 1 = standard ELBO)

    def __post_init__(self):
        if self.n_sites < 1 or self.n_species < 2:
            raise ValueError(
                f"need n_sites >= 1 and n_species >= 2, got {self.n_sites}, {self.n_species}"
            )
        if self.latent_dim < 1:
            raise ValueError(f"latent_dim must be >= 1, got {self.latent_dim}")
        if not self.hidden:
            raise ValueError("at least one hidden layer is required")
        if self.beta < 0:
            raise ValueError(f"beta must be >= 0, got {self.beta}")

    @property
    def input_dim(self) -> int:
        return self.n_sites * self.n_species


class CategoricalVAE:
    """VAE with a factorized categorical decoder over lattice sites.

    Parameters
    ----------
    config : VAEConfig
    rng : seed or Generator
        Weight initialization stream.
    """

    def __init__(self, config: VAEConfig, rng=None):
        self.config = config
        rng = as_generator(rng)
        d_in = config.input_dim
        enc_layers: list = []
        prev = d_in
        for k, h in enumerate(config.hidden):
            enc_layers += [Dense(prev, h, rng, name=f"enc{k}"), Tanh()]
            prev = h
        self.encoder = Sequential(*enc_layers)
        self.enc_head = Dense(prev, 2 * config.latent_dim, rng, name="enc_head")

        dec_layers: list = []
        prev = config.latent_dim
        for k, h in enumerate(reversed(config.hidden)):
            dec_layers += [Dense(prev, h, rng, name=f"dec{k}"), Tanh()]
            prev = h
        dec_layers.append(Dense(prev, d_in, rng, init=glorot_uniform, name="dec_out"))
        self.decoder = Sequential(*dec_layers)

    # ------------------------------------------------------------ parameters

    def parameters(self):
        return (
            self.encoder.parameters()
            + self.enc_head.parameters()
            + self.decoder.parameters()
        )

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def bind_workspace(self, workspace) -> None:
        """Preallocate encoder/decoder intermediates in ``workspace``
        (see :mod:`repro.nn.workspace`)."""
        self.encoder.bind_workspace(workspace)
        self.enc_head.bind_workspace(workspace)
        self.decoder.bind_workspace(workspace)

    # ------------------------------------------------------------- encoding

    def _check_input(self, x_onehot: np.ndarray) -> np.ndarray:
        x = np.asarray(x_onehot, dtype=np.float64)
        c = self.config
        if x.ndim == 2 and x.shape == (c.n_sites, c.n_species):
            x = x[None]
        if x.ndim != 3 or x.shape[1:] != (c.n_sites, c.n_species):
            raise ValueError(
                f"expected one-hot input of shape (B, {c.n_sites}, {c.n_species}), "
                f"got {np.asarray(x_onehot).shape}"
            )
        return x

    def encode(self, x_onehot: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior parameters ``(mu, logvar)``, each (B, latent_dim)."""
        x = self._check_input(x_onehot)
        h = self.encoder.forward(x.reshape(x.shape[0], -1))
        stats = self.enc_head.forward(h)
        L = self.config.latent_dim
        mu = stats[:, :L]
        logvar = np.clip(stats[:, L:], -_LOGVAR_CLAMP, _LOGVAR_CLAMP)
        return mu, logvar

    def decode_logits(self, z: np.ndarray) -> np.ndarray:
        """Decoder logits, shape (B, n_sites, n_species)."""
        z = np.atleast_2d(np.asarray(z, dtype=np.float64))
        out = self.decoder.forward(z)
        return out.reshape(z.shape[0], self.config.n_sites, self.config.n_species)

    # -------------------------------------------------------------- training

    def train_step(self, x_onehot: np.ndarray, optimizer, rng, max_grad_norm: float = 10.0) -> dict:
        """One gradient step on the (beta-)ELBO for a batch.

        Returns a metrics dict: ``loss``, ``recon``, ``kl``, ``grad_norm``.
        """
        x = self._check_input(x_onehot)
        rng = as_generator(rng)
        batch = x.shape[0]
        L = self.config.latent_dim

        self.zero_grad()
        flat = x.reshape(batch, -1)
        h = self.encoder.forward(flat)
        stats = self.enc_head.forward(h)
        mu = stats[:, :L]
        raw_logvar = stats[:, L:]
        clipped = np.clip(raw_logvar, -_LOGVAR_CLAMP, _LOGVAR_CLAMP)
        eps = rng.standard_normal(mu.shape)
        std = np.exp(0.5 * clipped)
        z = mu + std * eps
        logits = self.decoder.forward(z).reshape(x.shape)

        recon, dlogits = categorical_cross_entropy_from_logits(logits, x)
        kl, dmu_kl, dlogvar_kl = gaussian_kl_divergence(mu, clipped)
        loss = recon + self.config.beta * kl

        dz = self.decoder.backward(dlogits.reshape(batch, -1))
        dmu = dz + self.config.beta * dmu_kl
        dlogvar = dz * eps * 0.5 * std + self.config.beta * dlogvar_kl
        # Clamp is identity inside the interval, zero-gradient outside.
        dlogvar = np.where(np.abs(raw_logvar) < _LOGVAR_CLAMP, dlogvar, 0.0)
        dstats = np.concatenate([dmu, dlogvar], axis=1)
        dh = self.enc_head.backward(dstats)
        self.encoder.backward(dh)

        grad_norm = clip_gradients(self.parameters(), max_grad_norm)
        optimizer.step()
        return {"loss": loss, "recon": recon, "kl": kl, "grad_norm": grad_norm}

    # -------------------------------------------------------------- sampling

    def sample(self, n: int, rng, return_log_conditional: bool = False,
               logit_temperature: float = 1.0):
        """Draw ``n`` configurations: z ~ N(0, I), x ~ p(x|z) sitewise.

        ``logit_temperature > 1`` broadens the decoder categorical
        distributions (logits are divided by it) — the standard control
        against over-sharpened independence proposals.  All density methods
        take the same parameter; using one consistent value keeps the
        proposal kernel exactly defined.

        Returns
        -------
        configs : (n, n_sites) int8
        log_cond : (n,) float, optional
            ``log p(x|z)`` of each draw under its own latent (NOT the
            marginal; use :meth:`log_marginal` for MH corrections).
        """
        if logit_temperature <= 0:
            raise ValueError(f"logit_temperature must be > 0, got {logit_temperature}")
        rng = as_generator(rng)
        c = self.config
        z = rng.standard_normal((n, c.latent_dim))
        logits = self.decode_logits(z) / logit_temperature
        probs = softmax(logits, axis=-1)
        # Vectorized categorical sampling via inverse CDF.
        cdf = np.cumsum(probs, axis=-1)
        u = rng.random((n, c.n_sites, 1))
        configs = (u > cdf).sum(axis=-1).astype(np.int8)
        np.clip(configs, 0, c.n_species - 1, out=configs)
        if not return_log_conditional:
            return configs
        logp = log_softmax(logits, axis=-1)
        picked = np.take_along_axis(logp, configs[..., None].astype(np.int64), axis=-1)
        return configs, picked[..., 0].sum(axis=1)

    def log_conditional(self, x_onehot: np.ndarray, z: np.ndarray,
                        logit_temperature: float = 1.0) -> np.ndarray:
        """``log p(x | z)`` for batches of x and z (paired rows)."""
        if logit_temperature <= 0:
            raise ValueError(f"logit_temperature must be > 0, got {logit_temperature}")
        x = self._check_input(x_onehot)
        logits = self.decode_logits(z) / logit_temperature
        if logits.shape[0] != x.shape[0]:
            raise ValueError(
                f"batch mismatch: {x.shape[0]} configurations vs {logits.shape[0]} latents"
            )
        logp = log_softmax(logits, axis=-1)
        return (logp * x).sum(axis=(1, 2))

    def log_marginal(self, x_onehot: np.ndarray, n_samples: int = 32, rng=None,
                     use_encoder: bool = True,
                     logit_temperature: float = 1.0) -> np.ndarray:
        """IWAE estimate of ``log q(x) = log E_{z~N(0,I)} p(x|z)``.

        With ``use_encoder=True`` (default) the estimator importance-samples
        from the trained posterior: ``log (1/S) Σ p(x|z_s) p(z_s)/q(z_s|x)``,
        z_s ~ q(z|x) — low variance once the encoder fits.  With ``False`` it
        samples the prior directly (unbiased in the same sense but higher
        variance; used in tests to bound the encoder estimator).
        """
        x = self._check_input(x_onehot)
        rng = as_generator(rng)
        B = x.shape[0]
        L = self.config.latent_dim
        terms = np.empty((n_samples, B), dtype=np.float64)
        if use_encoder:
            mu, logvar = self.encode(x)
            std = np.exp(0.5 * logvar)
            for s in range(n_samples):
                eps = rng.standard_normal((B, L))
                z = mu + std * eps
                log_pxz = self.log_conditional(x, z, logit_temperature=logit_temperature)
                log_pz = -0.5 * np.sum(z**2 + np.log(2 * np.pi), axis=1)
                log_qz = -0.5 * np.sum(eps**2 + np.log(2 * np.pi) + logvar, axis=1)
                terms[s] = log_pxz + log_pz - log_qz
        else:
            for s in range(n_samples):
                z = rng.standard_normal((B, L))
                terms[s] = self.log_conditional(x, z, logit_temperature=logit_temperature)
        return logsumexp(terms, axis=0) - np.log(n_samples)
