"""Pure-numpy neural-network substrate (S3).

The paper trains its deep-learning MC proposals with PyTorch on V100/MI250X
GPUs; this environment has no torch and no GPU, so the substrate is a small
explicit-backprop framework (DESIGN.md §4).  It provides exactly what the
proposals need and nothing more:

- :mod:`repro.nn.layers` — Dense, activations, Sequential (forward caches,
  backward accumulates gradients),
- :mod:`repro.nn.losses` — categorical cross-entropy from logits, MSE,
  Gaussian-VAE KL,
- :mod:`repro.nn.optim` — SGD (momentum) and Adam with gradient clipping,
- :mod:`repro.nn.models.vae` — categorical VAE over lattice configurations
  (global-update proposal of the paper),
- :mod:`repro.nn.models.made` — MADE autoregressive model with *exact*
  likelihoods (ablation / cross-check proposal),
- :mod:`repro.nn.serialization` — save/load parameters as ``.npz``.

Every layer's backward pass is verified against central finite differences
in ``tests/test_nn_gradcheck.py``.
"""

from repro.nn.initializers import glorot_uniform, he_normal, normal_init, zeros_init
from repro.nn.layers import (
    Layer,
    Dense,
    ReLU,
    Tanh,
    Sigmoid,
    LeakyReLU,
    Softplus,
    Sequential,
    Parameter,
)
from repro.nn.losses import (
    mse_loss,
    categorical_cross_entropy_from_logits,
    gaussian_kl_divergence,
)
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.models.vae import CategoricalVAE, VAEConfig
from repro.nn.models.made import MADE, MADEConfig
from repro.nn.models.cmade import ConditionalMADE, ConditionalMADEConfig
from repro.nn.serialization import save_params, load_params
from repro.nn.workspace import Workspace, encode_one_hot

__all__ = [
    "glorot_uniform",
    "he_normal",
    "normal_init",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Softplus",
    "Sequential",
    "Parameter",
    "mse_loss",
    "categorical_cross_entropy_from_logits",
    "gaussian_kl_divergence",
    "SGD",
    "Adam",
    "clip_gradients",
    "CategoricalVAE",
    "VAEConfig",
    "MADE",
    "MADEConfig",
    "ConditionalMADE",
    "ConditionalMADEConfig",
    "save_params",
    "load_params",
    "Workspace",
    "encode_one_hot",
]
