"""Layers with explicit forward/backward passes.

Design: a :class:`Layer` owns :class:`Parameter` objects (value + gradient
buffer).  ``forward`` caches whatever ``backward`` needs; ``backward``
receives dL/d(output), *accumulates* into parameter gradients, and returns
dL/d(input).  Optimizers consume ``layer.parameters()``.

This mirrors the structure of a framework like PyTorch closely enough that
the VAE/MADE model code reads like its torch counterpart, while staying pure
numpy (the environment has no torch — DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "Sequential",
]


class Parameter:
    """A trainable tensor with an accumulating gradient buffer."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self):
        return self.value.shape

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Layer:
    """Base layer: parameter registry + forward/backward contract."""

    #: Optional :class:`repro.nn.workspace.Workspace` the layer routes its
    #: intermediates through (None = allocate per call, the default).
    _workspace = None

    def parameters(self) -> list[Parameter]:
        """All trainable parameters (subclasses with params override)."""
        return []

    def bind_workspace(self, workspace) -> None:
        """Route forward/backward intermediates through ``workspace``.

        Binding never changes results — ``out=`` variants of the same ops
        are bit-identical — only where they are written.  Buffers are
        borrowed per pass: a layer's output is valid until its next forward
        (see :mod:`repro.nn.workspace`).  Pass ``None`` to unbind.
        """
        self._workspace = workspace

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features : int
    rng : numpy.random.Generator
        Source for the weight init.
    init : callable
        ``init(rng, fan_in, fan_out) -> (fan_in, fan_out) array``.
    bias : bool
        Include the additive bias (default True).
    mask : numpy.ndarray, optional
        Fixed binary mask applied multiplicatively to ``W`` (MADE
        autoregressive masks); the mask also gates the gradient.
    """

    def __init__(self, in_features: int, out_features: int, rng, init=glorot_uniform,
                 bias: bool = True, mask: np.ndarray | None = None, name: str = "dense"):
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(f"{name}.W", init(rng, in_features, out_features))
        self.bias = Parameter(f"{name}.b", np.zeros(out_features)) if bias else None
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.shape != (in_features, out_features):
                raise ValueError(
                    f"mask shape {mask.shape} != ({in_features}, {out_features})"
                )
        self.mask = mask
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def effective_weight(self, workspace=None) -> np.ndarray:
        if self.mask is None:
            return self.weight.value
        if workspace is None:
            return self.weight.value * self.mask
        buf = workspace.take((id(self), "eff_w"), self.weight.value.shape)
        return np.multiply(self.weight.value, self.mask, out=buf)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        ws = self._workspace
        if ws is not None and x.ndim == 2:
            y = np.matmul(x, self.effective_weight(ws),
                          out=ws.take((id(self), "y"), (x.shape[0], self.out_features)))
            if self.bias is not None:
                y += self.bias.value
            return y
        y = x @ self.effective_weight()
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        ws = self._workspace
        if ws is not None and grad_out.ndim == 2 and self._x.ndim == 2:
            gw = np.matmul(self._x.T, grad_out,
                           out=ws.take((id(self), "gw"), self.weight.value.shape))
            if self.mask is not None:
                gw *= self.mask
            self.weight.grad += gw
            if self.bias is not None:
                self.bias.grad += grad_out.sum(axis=0)
            gx = ws.take((id(self), "gx"), (grad_out.shape[0], self.in_features))
            return np.matmul(grad_out, self.effective_weight(ws).T, out=gx)
        gw = self._x.T @ grad_out
        if self.mask is not None:
            gw *= self.mask
        self.weight.grad += gw
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.effective_weight().T


class _Activation(Layer):
    """Base for parameter-free elementwise activations."""

    def __init__(self):
        self._cache: np.ndarray | None = None


class ReLU(_Activation):
    """max(0, x)."""

    def forward(self, x):
        ws = self._workspace
        if ws is not None:
            self._cache = np.greater(x, 0, out=ws.take((id(self), "mask"), x.shape, bool))
            return np.maximum(x, 0.0, out=ws.take((id(self), "y"), x.shape))
        self._cache = x > 0
        return np.where(self._cache, x, 0.0)

    def backward(self, grad_out):
        ws = self._workspace
        if ws is not None:
            return np.multiply(grad_out, self._cache,
                               out=ws.take((id(self), "gx"), grad_out.shape))
        return grad_out * self._cache


class LeakyReLU(_Activation):
    """x for x>0, alpha·x otherwise."""

    def __init__(self, alpha: float = 0.01):
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x):
        self._cache = x > 0
        return np.where(self._cache, x, self.alpha * x)

    def backward(self, grad_out):
        return np.where(self._cache, grad_out, self.alpha * grad_out)


class Tanh(_Activation):
    """Hyperbolic tangent."""

    def forward(self, x):
        ws = self._workspace
        if ws is not None:
            y = np.tanh(x, out=ws.take((id(self), "y"), x.shape))
        else:
            y = np.tanh(x)
        self._cache = y
        return y

    def backward(self, grad_out):
        ws = self._workspace
        if ws is not None:
            t = ws.take((id(self), "gx"), grad_out.shape)
            np.multiply(self._cache, self._cache, out=t)
            np.subtract(1.0, t, out=t)
            return np.multiply(grad_out, t, out=t)
        return grad_out * (1.0 - self._cache**2)


class Sigmoid(_Activation):
    """Logistic sigmoid (stable at large |x|)."""

    def forward(self, x):
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._cache = out
        return out

    def backward(self, grad_out):
        return grad_out * self._cache * (1.0 - self._cache)


class Softplus(_Activation):
    """log(1 + exp(x)) (stable)."""

    def forward(self, x):
        self._cache = x
        out = np.empty_like(x, dtype=np.float64)
        pos = x > 0
        out[pos] = x[pos] + np.log1p(np.exp(-x[pos]))
        out[~pos] = np.log1p(np.exp(x[~pos]))
        return out

    def backward(self, grad_out):
        x = self._cache
        sig = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        sig[~pos] = ex / (1.0 + ex)
        return grad_out * sig


class Sequential(Layer):
    """Layer composition with reverse-order backward."""

    def __init__(self, *layers: Layer):
        self.layers = list(layers)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def bind_workspace(self, workspace) -> None:
        """Bind ``workspace`` to every child layer (recursively)."""
        self._workspace = workspace
        for layer in self.layers:
            layer.bind_workspace(workspace)

    def forward(self, x):
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out):
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)
