"""Optimizers over :class:`repro.nn.layers.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam", "clip_gradients"]


def clip_gradients(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    sq = sum(float(np.sum(p.grad**2)) for p in params)
    norm = float(np.sqrt(sq))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


class _Optimizer:
    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with classical momentum.

    ``v ← momentum·v − lr·g;  θ ← θ + v``
    """

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v


class Adam(_Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, params, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            p.value -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
