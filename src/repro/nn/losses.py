"""Loss functions returning ``(value, grad_wrt_input)``.

Each loss returns the scalar loss (mean over the batch) and the gradient
with respect to its first argument, ready to feed into a model's backward
pass.  Keeping value and gradient in one function avoids cache mismatch bugs
between separate ``loss()`` / ``loss_grad()`` calls.
"""

from __future__ import annotations

import numpy as np

from repro.util.numerics import log_softmax, softmax

__all__ = [
    "mse_loss",
    "categorical_cross_entropy_from_logits",
    "gaussian_kl_divergence",
]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements; grad w.r.t. ``pred``."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def categorical_cross_entropy_from_logits(
    logits: np.ndarray, one_hot_targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy, summed over sites, averaged over the batch.

    Parameters
    ----------
    logits : (B, ..., S)
        Unnormalized class scores; softmax is over the last axis.
    one_hot_targets : same shape
        One-hot targets.

    Returns
    -------
    (loss, grad)
        ``loss`` is mean-over-batch of the summed negative log-likelihood;
        ``grad`` is d(loss)/d(logits) = (softmax − target)/B.
    """
    logits = np.asarray(logits, dtype=np.float64)
    t = np.asarray(one_hot_targets, dtype=np.float64)
    if logits.shape != t.shape:
        raise ValueError(f"shape mismatch: logits {logits.shape} vs targets {t.shape}")
    batch = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    loss = float(-(t * logp).sum() / batch)
    grad = (softmax(logits, axis=-1) - t) / batch
    return loss, grad


def gaussian_kl_divergence(mu: np.ndarray, logvar: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """KL(N(mu, exp(logvar)) || N(0, I)), summed over dims, batch-averaged.

    Returns
    -------
    (kl, grad_mu, grad_logvar)
        The VAE regularizer and its gradients:
        KL = −½ Σ (1 + logvar − mu² − e^logvar);
        dKL/dmu = mu/B, dKL/dlogvar = ½(e^logvar − 1)/B.
    """
    mu = np.asarray(mu, dtype=np.float64)
    logvar = np.asarray(logvar, dtype=np.float64)
    batch = mu.shape[0]
    var = np.exp(logvar)
    kl = float(-0.5 * np.sum(1.0 + logvar - mu**2 - var) / batch)
    grad_mu = mu / batch
    grad_logvar = 0.5 * (var - 1.0) / batch
    return kl, grad_mu, grad_logvar
