"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible under the repository-wide seeding discipline
(:class:`repro.util.RngFactory`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "normal_init", "zeros_init"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform: U(−a, a) with a = sqrt(6/(fan_in + fan_out)).

    The default for tanh/sigmoid stacks (the VAE encoder/decoder).
    """
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He normal: N(0, 2/fan_in) — the default for ReLU stacks (MADE)."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def normal_init(rng: np.random.Generator, fan_in: int, fan_out: int, std: float = 0.01) -> np.ndarray:
    """Plain N(0, std²) initialization."""
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """All-zeros (used for output layers that should start uniform)."""
    return np.zeros((fan_in, fan_out))
