"""Trainer binding a proposal model to a replay buffer."""

from __future__ import annotations

import time
from contextlib import nullcontext

import numpy as np

from repro.nn.models.made import MADE
from repro.nn.models.vae import CategoricalVAE
from repro.nn.optim import Adam
from repro.training.buffer import ReplayBuffer
from repro.util.rng import as_generator

__all__ = ["ProposalTrainer"]


class ProposalTrainer:
    """Train a VAE or MADE proposal model from a replay buffer.

    Parameters
    ----------
    model : CategoricalVAE or MADE
    buffer : ReplayBuffer
    lr : float
        Adam learning rate.
    batch_size : int
    rng : seed or Generator
        Batch-sampling and (for the VAE) reparameterization stream.
    telemetry : repro.obs.Telemetry, optional
        Records per-step loss/batch timing (``train.loss`` gauge,
        ``train.batch_seconds`` histogram, ``train_step`` events).  Training
        math is unaffected: telemetry draws nothing from ``rng``.
    """

    def __init__(self, model, buffer: ReplayBuffer, lr: float = 1e-3,
                 batch_size: int = 64, rng=None, telemetry=None):
        if not isinstance(model, (CategoricalVAE, MADE)):
            raise TypeError(
                f"model must be CategoricalVAE or MADE, got {type(model).__name__}"
            )
        self.model = model
        self.buffer = buffer
        self.batch_size = int(batch_size)
        self.rng = as_generator(rng)
        self.optimizer = Adam(model.parameters(), lr=lr)
        self.loss_history: list[float] = []
        self.steps_trained = 0
        self.telemetry = telemetry

    @property
    def is_vae(self) -> bool:
        return isinstance(self.model, CategoricalVAE)

    def train_steps(self, n_steps: int) -> dict:
        """Run ``n_steps`` gradient steps; returns mean metrics."""
        if len(self.buffer) == 0:
            raise ValueError("replay buffer is empty; harvest configurations first")
        obs = self.telemetry
        losses = []
        with obs.span("train", steps=n_steps) if obs is not None else nullcontext():
            for _ in range(n_steps):
                t0 = time.perf_counter()
                batch = self.buffer.sample_one_hot(self.batch_size, self.rng)
                if self.is_vae:
                    metrics = self.model.train_step(batch, self.optimizer, self.rng)
                else:
                    metrics = self.model.train_step(batch, self.optimizer)
                losses.append(metrics["loss"])
                self.loss_history.append(metrics["loss"])
                self.steps_trained += 1
                if obs is not None:
                    dt = time.perf_counter() - t0
                    obs.metrics.inc("train.steps")
                    obs.metrics.observe("train.batch_seconds", dt)
                    obs.metrics.set("train.loss", metrics["loss"])
                    if obs.enabled:
                        obs.emit("train_step", step=self.steps_trained,
                                 loss=float(metrics["loss"]), dur_s=dt)
        return {"mean_loss": float(np.mean(losses)), "last_loss": float(losses[-1])}

    def train_until(self, target_loss: float, max_steps: int = 5_000,
                    patience_window: int = 50) -> dict:
        """Train until the rolling mean loss reaches ``target_loss``.

        Returns the final metrics plus whether the target was reached —
        the E10 training-cost ablation sweeps this budget.
        """
        reached = False
        steps = 0
        while steps < max_steps:
            block = min(patience_window, max_steps - steps)
            self.train_steps(block)
            steps += block
            rolling = float(np.mean(self.loss_history[-patience_window:]))
            if rolling <= target_loss:
                reached = True
                break
        return {
            "steps": steps,
            "reached": reached,
            "rolling_loss": float(np.mean(self.loss_history[-patience_window:])),
        }
