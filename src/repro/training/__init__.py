"""Online training of learned proposals (S9).

DeepThermo trains its proposal model *on the fly*: walkers harvest visited
configurations into a replay buffer, the model is (re)trained periodically,
and refreshed weights drive subsequent global proposals.

- :class:`ReplayBuffer` — fixed-capacity ring buffer of configurations,
- :class:`ProposalTrainer` — model + optimizer + buffer with epoch-level
  training and loss history,
- :func:`pretrain_from_chain` — harvest from a Metropolis chain then train
  (the paper's warm-up phase),
- :class:`OnlineLoop` — alternating sample/train rounds with acceptance
  tracking (the full DeepThermo loop, used by experiments E5/E6/E10).
"""

from repro.training.buffer import ReplayBuffer
from repro.training.trainer import ProposalTrainer
from repro.training.pipeline import pretrain_from_chain, OnlineLoop, OnlineLoopResult

__all__ = [
    "ReplayBuffer",
    "ProposalTrainer",
    "pretrain_from_chain",
    "OnlineLoop",
    "OnlineLoopResult",
]
