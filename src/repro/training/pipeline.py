"""The DeepThermo sample→train→propose loop.

Phase 1 (*pretrain*): a cheap local-proposal chain harvests configurations
at the temperatures of interest and the proposal model is trained on them.

Phase 2 (*online*): sampling proceeds with a mixture of local moves and
learned global moves; every ``refresh_interval`` steps the model retrains on
the freshest buffer contents and the proposal caches are invalidated.  The
loop records the DL-move acceptance rate over time — the adaptation signal
the paper tracks (and our E10 ablation sweeps).

Note on adaptive-MCMC correctness: retraining the proposal from the chain's
own history makes the kernel adaptive.  Exactness is recovered by
*diminishing adaptation* (freeze the model after warm-up, which is what
:func:`pretrain_from_chain` + a fixed proposal gives you) — the online loop
is the paper's practical mode and is validated empirically against exact
enumeration in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.proposals.base import Proposal
from repro.proposals.mixture import MixtureProposal
from repro.sampling.metropolis import MetropolisSampler
from repro.training.buffer import ReplayBuffer
from repro.training.trainer import ProposalTrainer
from repro.util.rng import RngFactory

__all__ = ["pretrain_from_chain", "OnlineLoop", "OnlineLoopResult"]


def pretrain_from_chain(
    hamiltonian: Hamiltonian,
    local_proposal: Proposal,
    beta: float,
    initial_config: np.ndarray,
    trainer: ProposalTrainer,
    n_burn_in: int = 5_000,
    n_harvest: int = 200,
    harvest_interval: int = 50,
    train_steps: int = 500,
    seed: int = 0,
) -> dict:
    """Warm-up phase: harvest a local chain, then train the model.

    Returns a dict with the chain acceptance rate, number of harvested
    configurations, and the final training metrics.
    """
    rngs = RngFactory(seed)
    sampler = MetropolisSampler(
        hamiltonian, local_proposal, beta, initial_config, rng=rngs.make("pretrain-chain")
    )
    sampler.run(n_burn_in)

    def harvest(s: MetropolisSampler, _step: int) -> None:
        trainer.buffer.add(s.config)

    sampler.run(n_harvest * harvest_interval, callback=harvest, callback_every=harvest_interval)
    metrics = trainer.train_steps(train_steps)
    return {
        "chain_acceptance": sampler.acceptance_rate,
        "n_harvested": len(trainer.buffer),
        **metrics,
    }


@dataclass
class OnlineLoopResult:
    """Per-round history of the online loop."""

    rounds: int
    dl_acceptance_history: list[float] = field(default_factory=list)
    local_acceptance_history: list[float] = field(default_factory=list)
    loss_history: list[float] = field(default_factory=list)
    energies: list[float] = field(default_factory=list)


class OnlineLoop:
    """Alternate mixture-proposal sampling with model refreshes.

    Parameters
    ----------
    hamiltonian, beta, initial_config
        Target system and temperature.
    local_proposal : Proposal
        The cheap refinement kernel.
    dl_proposal : Proposal
        A learned global proposal (``VAEProposal`` or ``MADEProposal``)
        whose ``model`` the trainer owns.
    trainer : ProposalTrainer
    dl_fraction : float
        Mixture weight of the learned kernel.
    refresh_train_steps : int
        Gradient steps per refresh.
    seed : int
    """

    def __init__(self, hamiltonian: Hamiltonian, beta: float, initial_config: np.ndarray,
                 local_proposal: Proposal, dl_proposal: Proposal, trainer: ProposalTrainer,
                 dl_fraction: float = 0.1, refresh_train_steps: int = 200, seed: int = 0):
        if not 0.0 < dl_fraction < 1.0:
            raise ValueError(f"dl_fraction must be in (0, 1), got {dl_fraction}")
        self.trainer = trainer
        self.dl_proposal = dl_proposal
        self.local_proposal = local_proposal
        self.mixture = MixtureProposal(
            [(local_proposal, 1.0 - dl_fraction), (dl_proposal, dl_fraction)]
        )
        rngs = RngFactory(seed)
        self.sampler = MetropolisSampler(
            hamiltonian, self.mixture, beta, initial_config, rng=rngs.make("online-chain")
        )
        self.refresh_train_steps = int(refresh_train_steps)
        self._dl_attempts = 0
        self._dl_accepts = 0
        self._local_attempts = 0
        self._local_accepts = 0

    def _instrumented_step(self) -> None:
        before = self.mixture.counts.copy()
        accepted = self.sampler.step()
        chosen = int(np.argmax(self.mixture.counts - before))
        if chosen == 1:
            self._dl_attempts += 1
            self._dl_accepts += int(accepted)
        else:
            self._local_attempts += 1
            self._local_accepts += int(accepted)

    def run(self, n_rounds: int, steps_per_round: int, harvest_interval: int = 25) -> OnlineLoopResult:
        """Run the online loop; returns acceptance/loss histories per round."""
        result = OnlineLoopResult(rounds=n_rounds)
        for _round in range(n_rounds):
            self._dl_attempts = self._dl_accepts = 0
            self._local_attempts = self._local_accepts = 0
            for k in range(steps_per_round):
                self._instrumented_step()
                if (k + 1) % harvest_interval == 0:
                    self.trainer.buffer.add(self.sampler.config)
            metrics = self.trainer.train_steps(self.refresh_train_steps)
            # Every DL proposal caches log q(x_current); retraining changes
            # the density, so the cache must be dropped (the contract all
            # four DL proposals share — see repro.proposals.cache).
            invalidate = getattr(self.dl_proposal, "invalidate_cache", None)
            if invalidate is not None:
                invalidate()
            result.dl_acceptance_history.append(
                self._dl_accepts / self._dl_attempts if self._dl_attempts else float("nan")
            )
            result.local_acceptance_history.append(
                self._local_accepts / self._local_attempts if self._local_attempts else float("nan")
            )
            result.loss_history.append(metrics["mean_loss"])
            result.energies.append(self.sampler.energy)
        return result
