"""Replay buffer of Monte Carlo configurations."""

from __future__ import annotations

import numpy as np

from repro.lattice.configuration import one_hot
from repro.util.rng import as_generator
from repro.util.validation import check_integer

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity ring buffer of int8 configurations.

    Oldest entries are overwritten once full — the training distribution
    tracks the walker's recent history, which is what makes the proposal
    adapt as sampling explores new energy regions.
    """

    def __init__(self, capacity: int, n_sites: int, n_species: int):
        self.capacity = check_integer("capacity", capacity, minimum=1)
        self.n_sites = check_integer("n_sites", n_sites, minimum=1)
        self.n_species = check_integer("n_species", n_species, minimum=2)
        self._data = np.zeros((capacity, n_sites), dtype=np.int8)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count == self.capacity

    def add(self, config: np.ndarray) -> None:
        """Append one configuration (copied)."""
        config = np.asarray(config)
        if config.shape != (self.n_sites,):
            raise ValueError(
                f"configuration must have shape ({self.n_sites},), got {config.shape}"
            )
        self._data[self._next] = config
        self._next = (self._next + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)

    def add_batch(self, configs: np.ndarray) -> None:
        for row in np.atleast_2d(configs):
            self.add(row)

    def sample(self, batch_size: int, rng=None) -> np.ndarray:
        """Uniform sample with replacement, shape (batch, n_sites) int8."""
        if self._count == 0:
            raise ValueError("cannot sample from an empty buffer")
        rng = as_generator(rng)
        idx = rng.integers(0, self._count, size=batch_size)
        return self._data[idx].copy()

    def sample_one_hot(self, batch_size: int, rng=None) -> np.ndarray:
        """Uniform sample, one-hot encoded (B, n_sites, n_species).

        Encoded with the batched :func:`~repro.lattice.configuration.one_hot`
        gather — one scatter for the whole batch, bit-identical to stacking
        per-row encodings.
        """
        return one_hot(self.sample(batch_size, rng), self.n_species)

    def contents(self) -> np.ndarray:
        """All stored configurations (oldest-first not guaranteed)."""
        return self._data[: self._count].copy()
