"""DeepThermo reproduction.

A from-scratch Python implementation of *DeepThermo: Deep Learning
Accelerated Parallel Monte Carlo Sampling for Thermodynamics Evaluation of
High Entropy Alloys* (Yin, Wang, Shankar — IPDPS 2023).

Subpackages
-----------
``repro.util``          shared numerics / RNG / timing utilities
``repro.lattice``       periodic lattices, neighbor shells, configurations
``repro.hamiltonians``  Ising, Potts, and HEA effective-pair-interaction models
``repro.nn``            pure-numpy neural-network substrate (VAE, MADE, ...)
``repro.proposals``     MC proposals: local, cluster, deep-learning global
``repro.sampling``      Metropolis, Wang-Landau, multicanonical, tempering
``repro.parallel``      MPI-like communicator + replica-exchange Wang-Landau
``repro.obs``           run telemetry: metrics, spans, JSONL event traces
``repro.dos``           density-of-states stitching and thermodynamics
``repro.analysis``      short-range order, transitions, diagnostics
``repro.training``      online training loop for learned proposals
``repro.machine``       V100/MI250X machine performance models
``repro.experiments``   one runner per paper table/figure

Quickstart
----------
>>> from repro.lattice import bcc, random_configuration, equiatomic_counts
>>> from repro.hamiltonians import NbMoTaWHamiltonian
>>> lat = bcc(4)
>>> ham = NbMoTaWHamiltonian(lat)
>>> config = random_configuration(lat.n_sites, equiatomic_counts(lat.n_sites, 4), rng=0)
>>> energy = ham.energy(config)
"""

__version__ = "1.0.0"
