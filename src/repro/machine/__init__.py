"""Machine performance models (S10).

The paper demonstrates scalability up to 3,000 GPUs on an NVIDIA V100
machine (Summit-class) and an AMD MI250X machine (Crusher/Frontier-class).
We have neither, so — per DESIGN.md §4 — the scaling experiments (E7-E9)
run an analytic performance model:

- :mod:`repro.machine.specs` — published device/interconnect numbers for
  both machines,
- :mod:`repro.machine.perf_model` — per-round cost of the REWL+DL workload:
  MC step compute, NN proposal compute, window exchanges (point-to-point),
  ln g merges (allreduce), flatness sync,
- :mod:`repro.machine.scaling` — strong/weak scaling sweeps and the
  throughput table.

What the model preserves is the *shape* of the curves: near-linear scaling
while per-GPU work dominates, rolloff where exchange/merge communication
catches up, and the V100 vs MI250X per-GPU throughput ratio.  The real
distributed algorithm itself is exercised for real (at laptop scale) by
:mod:`repro.parallel`; this module only extrapolates its cost.
"""

from repro.machine.specs import (
    DeviceSpec,
    InterconnectSpec,
    MachineSpec,
    summit_v100,
    crusher_mi250x,
)
from repro.machine.autotune import CampaignPlan, plan_campaign
from repro.machine.memory import (
    ChunkPlan,
    plan_chunk_sites,
    streaming_bytes_per_site,
    materialized_bytes_per_site,
)
from repro.machine.perf_model import WorkloadSpec, RoundCostModel
from repro.machine.scaling import (
    ScalingPoint,
    strong_scaling,
    weak_scaling,
    throughput_table,
)

__all__ = [
    "CampaignPlan",
    "plan_campaign",
    "ChunkPlan",
    "plan_chunk_sites",
    "streaming_bytes_per_site",
    "materialized_bytes_per_site",
    "DeviceSpec",
    "InterconnectSpec",
    "MachineSpec",
    "summit_v100",
    "crusher_mi250x",
    "WorkloadSpec",
    "RoundCostModel",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "throughput_table",
]
