"""Published hardware specifications for the paper's two machines.

Numbers are vendor/facility-published peaks; the performance model applies
workload-dependent efficiency factors on top (see
:mod:`repro.machine.perf_model`), so only the *ratios* between machines and
between compute and communication matter for the reproduced curve shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "InterconnectSpec", "MachineSpec", "summit_v100", "crusher_mi250x"]


@dataclass(frozen=True)
class DeviceSpec:
    """One GPU (for MI250X: one GCD, the scheduling unit the paper counts).

    Attributes
    ----------
    name : str
    fp32_tflops : float
        Peak single-precision throughput.
    mem_bw_gbs : float
        Peak HBM bandwidth (GB/s).
    step_latency_ns : float
        Latency floor of one *dependent* MC step: a Markov chain is a
        serial dependency, so a single walker advances at cache/memory
        round-trip latency, not at peak throughput.  This floor — not the
        flop count — is what prices local moves on a GPU.
    """

    name: str
    fp32_tflops: float
    mem_bw_gbs: float
    step_latency_ns: float = 80.0


@dataclass(frozen=True)
class InterconnectSpec:
    """Inter-node network model (per endpoint).

    Attributes
    ----------
    latency_us : float
        Small-message one-way latency (MPI level).
    bandwidth_gbs : float
        Per-endpoint injection bandwidth (GB/s).
    """

    name: str
    latency_us: float
    bandwidth_gbs: float


@dataclass(frozen=True)
class MachineSpec:
    """A GPU supercomputer as the performance model sees it."""

    name: str
    device: DeviceSpec
    gpus_per_node: int
    network: InterconnectSpec
    #: Fraction of device peak achieved by the scattered-gather MC kernel
    #: (latency/bandwidth bound, irregular access).
    mc_efficiency: float
    #: Fraction of device peak achieved by batched dense NN inference.
    nn_efficiency: float

    def ptp_time(self, message_bytes: float) -> float:
        """Point-to-point message time (seconds), latency + bandwidth."""
        return self.network.latency_us * 1e-6 + message_bytes / (
            self.network.bandwidth_gbs * 1e9
        )

    def allreduce_time(self, message_bytes: float, n_ranks: int) -> float:
        """Ring-allreduce cost model: 2(P−1)/P bandwidth + log₂P latency."""
        if n_ranks <= 1:
            return 0.0
        import math

        lat = math.ceil(math.log2(n_ranks)) * self.network.latency_us * 1e-6
        bw = 2.0 * (n_ranks - 1) / n_ranks * message_bytes / (
            self.network.bandwidth_gbs * 1e9
        )
        return lat + bw


def summit_v100() -> MachineSpec:
    """Summit-class: IBM AC922 nodes, 6×V100, dual-rail EDR InfiniBand."""
    return MachineSpec(
        name="Summit (V100)",
        device=DeviceSpec(name="V100", fp32_tflops=15.7, mem_bw_gbs=900.0, step_latency_ns=80.0),
        gpus_per_node=6,
        network=InterconnectSpec(name="EDR-IB", latency_us=1.5, bandwidth_gbs=23.0),
        mc_efficiency=0.012,
        nn_efficiency=0.30,
    )


def crusher_mi250x() -> MachineSpec:
    """Crusher/Frontier-class: 4×MI250X (8 GCDs) per node, Slingshot-11."""
    return MachineSpec(
        name="Crusher (MI250X)",
        device=DeviceSpec(name="MI250X-GCD", fp32_tflops=23.9, mem_bw_gbs=1635.0, step_latency_ns=60.0),
        gpus_per_node=8,
        network=InterconnectSpec(name="Slingshot-11", latency_us=2.0, bandwidth_gbs=25.0),
        mc_efficiency=0.012,
        nn_efficiency=0.28,
    )
