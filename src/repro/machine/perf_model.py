"""Per-round cost model of the REWL + deep-proposal workload.

One REWL *round* per walker is ``steps_per_round`` MC steps followed by one
exchange/merge synchronization (exactly the structure of
:class:`repro.parallel.rewl.REWLDriver`).  The model prices:

compute (per walker, on one GPU)
    - local steps: a gather over ~2·z neighbors plus the acceptance
      arithmetic → ``flops_per_local_step`` (dominated by memory traffic;
      the machine's ``mc_efficiency`` reflects that),
    - DL steps: one decoder forward per proposal plus ``2·S`` encoder+
      decoder passes for the marginal estimates, batched → priced at dense
      ``nn_efficiency``,

communication (per round)
    - replica exchange with the neighbor window: one config message
      (``n_sites`` bytes one-hot-compressed to int8) each way,
    - within-window ln g merge: allreduce of ``n_bins`` float64 over the
      ``walkers_per_window`` team,
    - flatness/ln f sync: scalar allreduce over the team.

Op counts are *measured*, not guessed: the flop formulas below are
validated against instrumented counts from the actual Python kernels in
``tests/test_machine.py`` (same formulas, same parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.specs import MachineSpec
from repro.util.validation import check_in_range, check_integer, check_positive

__all__ = ["WorkloadSpec", "RoundCostModel"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the sampled system and the proposal mixture.

    Defaults correspond to the paper-scale HEA workload: a 16³ BCC cell
    (8192 sites, 4 species), two EPI shells (z = 8 + 6), a VAE with two
    hidden layers, 10% global DL moves with 32 marginal samples.
    """

    n_sites: int = 8192
    n_species: int = 4
    coordination: int = 14  # z₁ + z₂ on BCC
    n_bins: int = 1000  # global energy bins
    walkers_per_window: int = 2
    steps_per_round: int = 10_000
    dl_fraction: float = 0.1
    latent_dim: int = 64
    hidden: tuple[int, ...] = (1024, 512)
    marginal_samples: int = 32
    #: Coefficient of variation of per-walker round times (acceptance noise,
    #: DL-draw count variance); prices the BSP straggler effect
    #: E[max of g walkers] ≈ mean·(1 + cv·sqrt(2 ln g)).
    imbalance_cv: float = 0.03

    def __post_init__(self):
        check_integer("n_sites", self.n_sites, minimum=1)
        check_integer("n_species", self.n_species, minimum=2)
        check_integer("coordination", self.coordination, minimum=1)
        check_in_range("dl_fraction", self.dl_fraction, 0.0, 1.0)
        check_integer("marginal_samples", self.marginal_samples, minimum=1)

    # ------------------------------------------------------------ op counts

    @property
    def input_dim(self) -> int:
        return self.n_sites * self.n_species

    @property
    def flops_per_local_step(self) -> float:
        """Gather 2·z neighbor species, two table lookups and adds per
        neighbor (the ΔE closed form), plus ~20 ops of acceptance logic."""
        return 4.0 * 2.0 * self.coordination + 20.0

    @property
    def flops_nn_forward(self) -> float:
        """One encoder *or* decoder pass: 2·Σ(fan_in·fan_out) MACs."""
        dims = [self.input_dim, *self.hidden, 2 * self.latent_dim]
        enc = sum(2.0 * a * b for a, b in zip(dims[:-1], dims[1:]))
        ddims = [self.latent_dim, *reversed(self.hidden), self.input_dim]
        dec = sum(2.0 * a * b for a, b in zip(ddims[:-1], ddims[1:]))
        return 0.5 * (enc + dec)  # average of the two pass shapes

    @property
    def flops_per_dl_step(self) -> float:
        """Decode once to propose + 2·S (enc+dec) passes for both marginals."""
        return self.flops_nn_forward * (1.0 + 4.0 * self.marginal_samples)

    @property
    def config_bytes(self) -> float:
        """One configuration on the wire (int8 per site + header)."""
        return float(self.n_sites + 64)


class RoundCostModel:
    """Price one REWL round of this workload on a machine."""

    def __init__(self, machine: MachineSpec, workload: WorkloadSpec):
        self.machine = machine
        self.workload = workload

    # ------------------------------------------------------------- compute

    def local_step_time(self) -> float:
        """Seconds per local MC step on one device.

        Priced as max(flop time, dependent-step latency floor): a single
        Markov chain is serial, so the latency floor dominates in practice.
        """
        peak = self.machine.device.fp32_tflops * 1e12
        flop_time = self.workload.flops_per_local_step / (peak * self.machine.mc_efficiency)
        return max(flop_time, self.machine.device.step_latency_ns * 1e-9)

    def dl_step_time(self) -> float:
        """Seconds per DL global proposal on one device."""
        peak = self.machine.device.fp32_tflops * 1e12
        return self.workload.flops_per_dl_step / (peak * self.machine.nn_efficiency)

    def compute_time(self, walkers_on_gpu: int = 1) -> float:
        """Sampling time of one round for ``walkers_on_gpu`` co-resident
        walkers (they serialize on the device)."""
        check_positive("walkers_on_gpu", walkers_on_gpu)
        w = self.workload
        per_step = (1.0 - w.dl_fraction) * self.local_step_time() + w.dl_fraction * self.dl_step_time()
        return walkers_on_gpu * w.steps_per_round * per_step

    # --------------------------------------------------------------- comms

    def exchange_time(self) -> float:
        """Inter-window configuration swap (sendrecv with one neighbor)."""
        return 2.0 * self.machine.ptp_time(self.workload.config_bytes)

    def merge_time(self) -> float:
        """Within-window ln g allreduce + scalar flatness sync."""
        w = self.workload
        lng = self.machine.allreduce_time(8.0 * w.n_bins, w.walkers_per_window)
        flat = self.machine.allreduce_time(8.0, w.walkers_per_window)
        return lng + flat

    def comm_time(self) -> float:
        return self.exchange_time() + self.merge_time()

    # --------------------------------------------------------------- round

    def round_time(self, walkers_on_gpu: int = 1) -> float:
        """Wall time of one bulk-synchronous round."""
        return self.compute_time(walkers_on_gpu) + self.comm_time()

    def steps_per_second(self, walkers_on_gpu: int = 1) -> float:
        """Per-GPU MC throughput including synchronization overhead."""
        total_steps = walkers_on_gpu * self.workload.steps_per_round
        return total_steps / self.round_time(walkers_on_gpu)
