"""Campaign-shape auto-tuning backed by the machine performance model.

The fused/shm campaign backends expose worker-count-shaped knobs
(``n_windows``, ``walkers_per_window``, ``overlap``) that users otherwise
guess.  :func:`plan_campaign` picks them from first principles:

- **overlap** defaults to 0.75 — the replica-exchange Wang-Landau
  literature's standard choice (Vogel et al. 2013 use 75% overlap for
  robust exchange acceptance); narrower overlaps starve the exchange
  phase, wider ones waste sampling on redundant bins;
- **n_windows** is bounded above by the available workers (more windows
  than workers just serialize) and by the grid (each window needs enough
  bins to be a meaningful sub-problem), then chosen to maximize the
  modeled aggregate MC throughput of one round
  (:class:`~repro.machine.perf_model.RoundCostModel` — compute shrinks
  with window count while exchange/merge costs grow, so the argmax is the
  classic scaling knee);
- **walkers_per_window** comes from the same sweep: co-resident walkers
  amortize gather/merge costs until they serialize the device.

The returned :class:`CampaignPlan` is a plain record; ``REWLConfig``
fields left as ``None`` are resolved through :func:`plan_campaign` by the
driver (see :class:`~repro.parallel.rewl.REWLDriver`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.machine.perf_model import RoundCostModel, WorkloadSpec
from repro.machine.specs import MachineSpec, summit_v100

__all__ = ["CampaignPlan", "plan_campaign"]

#: Literature-default window overlap (fraction of a window's bins shared
#: with each neighbor).
DEFAULT_OVERLAP = 0.75

#: Smallest window worth its exchange/merge overhead, in bins.
_MIN_WINDOW_BINS = 8


@dataclass(frozen=True)
class CampaignPlan:
    """An auto-tuned campaign shape plus the model's throughput forecast."""

    n_windows: int
    walkers_per_window: int
    overlap: float
    n_workers: int
    predicted_round_s: float
    predicted_steps_per_s: float


def _window_bins(n_bins: int, n_windows: int, overlap: float) -> int:
    """Common window width for ``n_windows`` overlapping windows (the same
    arithmetic as :func:`repro.parallel.windows.make_windows`)."""
    if n_windows == 1:
        return n_bins
    span = 1.0 + (n_windows - 1) * (1.0 - overlap)
    return max(1, round(n_bins / span))


def plan_campaign(*, n_bins: int, n_sites: int, n_workers: int | None = None,
                  machine: MachineSpec | None = None,
                  walkers_per_window: int | None = None,
                  overlap: float | None = None,
                  steps_per_round: int = 2_000) -> CampaignPlan:
    """Pick (n_windows, walkers_per_window, overlap) for a campaign.

    ``n_workers`` defaults to the local CPU count minus one (the shm
    controller rank); ``machine`` defaults to the Summit-class V100 spec —
    only relative costs matter for the argmax, and the model's compute/
    communication split is machine-shape-stable.  Fixing
    ``walkers_per_window`` or ``overlap`` restricts the sweep to the free
    knobs.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins!r}")
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites!r}")
    if n_workers is None:
        n_workers = max(1, (os.cpu_count() or 2) - 1)
    if machine is None:
        machine = summit_v100()
    ov = DEFAULT_OVERLAP if overlap is None else float(overlap)

    max_windows = max(1, min(int(n_workers), n_bins // _MIN_WINDOW_BINS))
    walker_choices = (
        (1, 2, 4) if walkers_per_window is None else (int(walkers_per_window),)
    )
    base = WorkloadSpec(
        n_sites=int(n_sites), n_bins=n_bins, steps_per_round=steps_per_round
    )
    best = None
    for n_windows in range(1, max_windows + 1):
        width = _window_bins(n_bins, n_windows, ov)
        if width < _MIN_WINDOW_BINS and n_windows > 1:
            continue
        for k in walker_choices:
            workload = replace(
                base, n_bins=width, walkers_per_window=k
            )
            model = RoundCostModel(machine, workload)
            round_s = model.round_time(walkers_on_gpu=k)
            # Aggregate campaign throughput: every window's K walkers step
            # steps_per_round each round, windows run concurrently.
            agg = n_windows * k * workload.steps_per_round / round_s
            if best is None or agg > best[0]:
                best = (agg, n_windows, k, round_s)
    agg, n_windows, k, round_s = best
    return CampaignPlan(
        n_windows=n_windows, walkers_per_window=k, overlap=ov,
        n_workers=int(n_workers), predicted_round_s=float(round_s),
        predicted_steps_per_s=float(agg),
    )
