"""Memory budgets and auto-chunk planning for the ultra-large-scale tier.

The streaming kernels (:class:`repro.kernels.chunked.ChunkedPairTables`)
never materialize an ``(N, z)`` neighbor table; instead they rebuild
neighbor rows for fixed-size site blocks from the lattice offset catalog.
This module decides the block size: given the per-site working-set bytes of
one streamed block and a peak-memory budget, :func:`plan_chunk_sites`
returns the largest chunk that stays inside the budget (bigger chunks
amortize per-block Python overhead; the budget caps peak RSS regardless of
``n_sites``).

The byte model is deliberately simple and *conservative* — it prices every
intermediate a streamed block allocates (the int32 neighbor rows, the
gathered int8 neighbor species, and the int64 flattened keys fed to
``bincount``) rather than assuming the allocator reuses buffers.  Measured
per-site budgets are recorded in DESIGN.md §17.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ChunkPlan",
    "DEFAULT_CHUNK_BUDGET_BYTES",
    "MIN_CHUNK_SITES",
    "streaming_bytes_per_site",
    "materialized_bytes_per_site",
    "plan_chunk_sites",
]

#: Default working-set budget for one streamed block (not the whole
#: process): 256 MiB keeps a 10⁶-site two-shell BCC evaluation far under
#: the ~2 GB tier budget while leaving blocks large enough (~10⁵ sites)
#: that numpy dominates the per-block cost.
DEFAULT_CHUNK_BUDGET_BYTES = 256 * 1024 * 1024

#: Never plan blocks smaller than this — below it per-block Python
#: overhead dwarfs the vectorized work and throughput collapses.
MIN_CHUNK_SITES = 1024


def streaming_bytes_per_site(coordinations, n_species: int, batch: int = 1) -> int:
    """Working-set bytes one site contributes to a streamed block.

    Per shell of coordination ``z`` the block holds the int32 neighbor rows
    (``4z``), the gathered int8 neighbor species (``1z·batch``), and the
    int64 flattened pair keys for ``bincount`` (``8z·batch``); plus the
    int64 site coordinates used to build the rows (``8·(dim+1)`` ≈ 32,
    priced as a flat 48-byte per-site overhead to stay conservative).
    """
    z_total = int(sum(coordinations))
    per_site = 4 * z_total + (1 + 8) * z_total * max(1, int(batch)) + 48
    return int(per_site)


def materialized_bytes_per_site(coordinations, n_species: int) -> int:
    """Bytes per site of the *materialized* :class:`PairTables` structures
    (int32 shell tables + fused ``cat_table`` + int32 pair arrays) — what a
    non-streaming run pays, for comparison in DESIGN.md §17."""
    z_total = int(sum(coordinations))
    # shell tables (4z) + cat_table (4z) + pair_i/pair_j (z/2 bonds × 8 B).
    return int(4 * z_total + 4 * z_total + 4 * z_total)


@dataclass(frozen=True)
class ChunkPlan:
    """Resolved streaming plan for one lattice/Hamiltonian pairing."""

    chunk_sites: int
    n_chunks: int
    bytes_per_site: int
    est_block_bytes: int
    budget_bytes: int

    def __str__(self) -> str:
        return (
            f"ChunkPlan(chunk_sites={self.chunk_sites}, n_chunks={self.n_chunks}, "
            f"block≈{self.est_block_bytes / 1e6:.1f} MB "
            f"of {self.budget_bytes / 1e6:.0f} MB budget)"
        )


def plan_chunk_sites(
    n_sites: int,
    coordinations,
    n_species: int,
    *,
    budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES,
    batch: int = 1,
) -> ChunkPlan:
    """Pick the largest site-block size whose working set fits ``budget_bytes``.

    Parameters
    ----------
    n_sites : int
        Lattice size; the chunk is clamped to it (chunk > N degenerates to
        one unchunked block, which is exactly the bit-identity baseline).
    coordinations : sequence of int
        Shell coordination numbers (``lattice.shell_info`` second column).
    n_species : int
        Species count (enters only via the fixed bincount output, which is
        negligible and not per-site).
    budget_bytes : int
        Peak working-set budget for one block.
    batch : int
        Config-batch rows evaluated together (``energies``); scales the
        gathered-species and key intermediates.
    """
    n_sites = int(n_sites)
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    per_site = streaming_bytes_per_site(coordinations, n_species, batch=batch)
    chunk = max(MIN_CHUNK_SITES, int(budget_bytes) // per_site)
    chunk = min(chunk, n_sites)
    n_chunks = -(-n_sites // chunk)
    return ChunkPlan(
        chunk_sites=chunk,
        n_chunks=n_chunks,
        bytes_per_site=per_site,
        est_block_bytes=chunk * per_site,
        budget_bytes=int(budget_bytes),
    )
