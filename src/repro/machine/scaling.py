"""Strong/weak scaling sweeps over the performance model (E7-E9)."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.machine.perf_model import RoundCostModel, WorkloadSpec
from repro.machine.specs import MachineSpec

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling", "throughput_table"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (GPU count, time) point of a scaling curve."""

    n_gpus: int
    round_time: float
    speedup: float
    efficiency: float
    steps_per_second_total: float


def strong_scaling(machine: MachineSpec, workload: WorkloadSpec,
                   total_walkers: int, gpu_counts) -> list[ScalingPoint]:
    """Fixed problem (``total_walkers`` window-walkers), growing GPU count.

    With fewer GPUs than walkers, walkers share devices and serialize; with
    one walker per GPU the curve hits its compute floor and further GPUs
    would idle (points beyond ``total_walkers`` are clamped there, plus the
    growing synchronization cost — the classic strong-scaling rolloff).
    """
    model = RoundCostModel(machine, workload)
    points: list[ScalingPoint] = []
    base_time = None
    for g in sorted(set(int(x) for x in gpu_counts)):
        if g < 1:
            raise ValueError(f"gpu count must be >= 1, got {g}")
        walkers_per_gpu = max(1, int(np.ceil(total_walkers / g)))
        t = model.compute_time(walkers_per_gpu) * _straggler_factor(workload, g) + _sync_cost(
            machine, workload, g
        )
        if base_time is None:
            base_time = t * 1.0
            base_gpus = g
        speedup = base_time / t * 1.0
        points.append(
            ScalingPoint(
                n_gpus=g,
                round_time=t,
                speedup=speedup,
                efficiency=speedup / (g / base_gpus),
                steps_per_second_total=total_walkers * workload.steps_per_round / t,
            )
        )
    return points


def weak_scaling(machine: MachineSpec, workload: WorkloadSpec, gpu_counts) -> list[ScalingPoint]:
    """One walker per GPU, window count growing with the machine.

    Ideal weak scaling keeps the round time flat; the deviation comes from
    synchronization costs that grow (slowly) with the number of windows.
    """
    model = RoundCostModel(machine, workload)
    points: list[ScalingPoint] = []
    base_time = None
    for g in sorted(set(int(x) for x in gpu_counts)):
        if g < 1:
            raise ValueError(f"gpu count must be >= 1, got {g}")
        t = model.compute_time(1) * _straggler_factor(workload, g) + _sync_cost(
            machine, workload, g
        )
        if base_time is None:
            base_time = t
        efficiency = base_time / t
        points.append(
            ScalingPoint(
                n_gpus=g,
                round_time=t,
                speedup=efficiency * g,
                efficiency=efficiency,
                steps_per_second_total=g * workload.steps_per_round / t,
            )
        )
    return points


def _sync_cost(machine: MachineSpec, workload: WorkloadSpec, n_gpus: int) -> float:
    """Per-round synchronization: neighbor exchange + team merge + a global
    convergence check whose latency grows like log₂(GPUs)."""
    model = RoundCostModel(machine, workload)
    global_check = machine.allreduce_time(8.0, max(n_gpus, 1))
    return model.comm_time() + global_check


def _straggler_factor(workload: WorkloadSpec, n_gpus: int) -> float:
    """BSP straggler multiplier E[max of g] ≈ 1 + cv·√(2 ln g)."""
    if n_gpus <= 1:
        return 1.0
    return 1.0 + workload.imbalance_cv * float(np.sqrt(2.0 * np.log(n_gpus)))


def throughput_table(machines: list[MachineSpec], workload: WorkloadSpec) -> list[dict]:
    """Per-device steps/s for local-only vs DL-mixed sampling (table E9)."""
    rows = []
    for machine in machines:
        local_only = replace(workload, dl_fraction=0.0)
        m_local = RoundCostModel(machine, local_only)
        m_mixed = RoundCostModel(machine, workload)
        rows.append(
            {
                "machine": machine.name,
                "device": machine.device.name,
                "local_steps_per_s": m_local.steps_per_second(),
                "mixed_steps_per_s": m_mixed.steps_per_second(),
                "dl_step_ms": m_mixed.dl_step_time() * 1e3,
                "local_step_us": m_local.local_step_time() * 1e6,
            }
        )
    return rows
