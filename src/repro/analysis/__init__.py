"""Observables and diagnostics (S8).

- :mod:`repro.analysis.sro` — Warren–Cowley short-range order parameters
  (the HEA ordering observable of experiment E4),
- :mod:`repro.analysis.transition` — specific-heat-peak transition
  detection with quadratic refinement (E3),
- :mod:`repro.analysis.autocorr` — integrated autocorrelation time and
  effective sample size (E5 proposal-quality metric),
- :mod:`repro.analysis.flatness` — histogram flatness and energy round-trip
  (tunneling) counting (E6 time-to-solution metric).
"""

from repro.analysis.sro import (
    warren_cowley,
    warren_cowley_from_counts,
    pair_counts,
    sro_matrix_table,
)
from repro.analysis.transition import (
    transition_temperature,
    peak_full_width_half_max,
)
from repro.analysis.autocorr import (
    autocorrelation_function,
    integrated_autocorrelation_time,
    effective_sample_size,
)
from repro.analysis.flatness import histogram_flatness, count_round_trips

__all__ = [
    "warren_cowley",
    "warren_cowley_from_counts",
    "pair_counts",
    "sro_matrix_table",
    "transition_temperature",
    "peak_full_width_half_max",
    "autocorrelation_function",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "histogram_flatness",
    "count_round_trips",
]
