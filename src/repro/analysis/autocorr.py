"""Autocorrelation analysis of MC time series.

The quantity that makes "global proposals decorrelate in O(1) steps" a
measurable claim: the integrated autocorrelation time τ_int computed with
Sokal's adaptive windowing.  The effective sample size of a run of length n
is ``n / (2 τ_int)`` — experiment E5 reports τ_int for local vs DL
proposals side by side.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation_function",
    "integrated_autocorrelation_time",
    "effective_sample_size",
]


def autocorrelation_function(series, max_lag: int | None = None) -> np.ndarray:
    """Normalized autocorrelation ρ(t) for t = 0..max_lag (FFT-based)."""
    x = np.asarray(series, dtype=np.float64)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("series must be 1-D with at least 2 points")
    n = x.size
    if max_lag is None:
        max_lag = n // 2
    max_lag = min(max_lag, n - 1)
    x = x - x.mean()
    # FFT autocorrelation with zero padding (no circular wrap).
    size = 1 << (2 * n - 1).bit_length()
    f = np.fft.rfft(x, size)
    acov = np.fft.irfft(f * np.conjugate(f), size)[: max_lag + 1]
    acov /= np.arange(n, n - max_lag - 1, -1)  # unbiased normalization
    if acov[0] <= 0:
        return np.concatenate([[1.0], np.zeros(max_lag)])
    return acov / acov[0]


def integrated_autocorrelation_time(series, c: float = 5.0) -> float:
    """τ_int with Sokal's automatic window: the smallest W with W ≥ c·τ(W).

    ``τ_int = 1/2 + Σ_{t=1..W} ρ(t)``; a perfectly uncorrelated series
    gives ≈ 0.5, and the effective sample size is ``n / (2 τ_int)``.
    """
    rho = autocorrelation_function(series)
    tau = 0.5
    for window in range(1, rho.size):
        tau += float(rho[window])
        if window >= c * tau:
            break
    return max(tau, 0.5)


def effective_sample_size(series) -> float:
    """``n / (2 τ_int)`` — the number of independent samples in the run."""
    x = np.asarray(series, dtype=np.float64)
    return x.size / (2.0 * integrated_autocorrelation_time(x))
