"""Warren–Cowley short-range order (SRO) parameters.

For species pair (i, j) on coordination shell s::

    α_ij^s = 1 − P_s(j | i) / c_j

where ``P_s(j|i)`` is the probability that a shell-s neighbor of an i-atom
is a j-atom and ``c_j`` the concentration of j.  α < 0 means i–j pairs are
*favored* (chemical ordering), α > 0 means avoided (clustering), α = 0 is
the ideal random alloy.  In NbMoTaW-class HEAs the dominant signal is
strongly negative Mo–Ta first-shell SRO (B2-type ordering) — experiment E4
checks exactly this sign structure against the EPI signs.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.structures import Lattice
from repro.util.tables import format_table

__all__ = ["pair_counts", "warren_cowley", "warren_cowley_from_counts",
           "sro_matrix_table"]


def pair_counts(config: np.ndarray, table: np.ndarray, n_species: int) -> np.ndarray:
    """Directed neighbor-pair counts, shape (n_species, n_species).

    ``counts[a, b]`` = number of (site of species a, shell-neighbor of
    species b) ordered pairs; the matrix is symmetric for undirected shells
    (every bond is counted once in each direction).
    """
    config = np.asarray(config, dtype=np.int64)
    species_i = np.repeat(config, table.shape[1])
    species_j = config[table.reshape(-1)]
    flat = species_i * n_species + species_j
    counts = np.bincount(flat, minlength=n_species * n_species)
    return counts.reshape(n_species, n_species)


def warren_cowley_from_counts(counts: np.ndarray,
                              species_counts: np.ndarray) -> np.ndarray:
    """Warren–Cowley α from directed pair counts alone.

    ``counts[a, b]`` are the directed shell pair counts (one shell) and
    ``species_counts[a]`` the per-species atom counts.  Being a pure
    function of counts, this is what both the materialized path
    (:func:`warren_cowley`), the streaming path
    (:meth:`repro.kernels.chunked.ChunkedPairTables.pair_counts`), and the
    SRO-targeted generator (:mod:`repro.lattice.generate`) share — the
    generator anneals the affine form α = 1 − C·scale incrementally.
    """
    counts = np.asarray(counts, dtype=np.float64)
    species_counts = np.asarray(species_counts, dtype=np.float64)
    n_species = counts.shape[0]
    n_sites = species_counts.sum()
    conc = species_counts / n_sites
    row_tot = counts.sum(axis=1)  # z · (#atoms of species i)
    alpha = np.full((n_species, n_species), np.nan)
    for i in range(n_species):
        if row_tot[i] == 0:
            continue
        p_j_given_i = counts[i] / row_tot[i]
        for j in range(n_species):
            if conc[j] > 0:
                alpha[i, j] = 1.0 - p_j_given_i[j] / conc[j]
    return alpha


def warren_cowley(lattice: Lattice, config: np.ndarray, n_species: int,
                  shell: int = 0) -> np.ndarray:
    """Warren–Cowley α matrix for one shell, shape (n_species, n_species).

    Pairs involving an absent species are NaN.  The matrix satisfies the
    concentration-weighted sum rules ``Σ_j c_j (1 − α_ij) = 1`` exactly
    (property-tested).
    """
    shells = lattice.neighbor_shells(shell + 1)
    table = shells[shell].table
    config = np.asarray(config, dtype=np.int64)
    counts = pair_counts(config, table, n_species)
    species_counts = np.bincount(config, minlength=n_species)
    return warren_cowley_from_counts(counts, species_counts)


def sro_matrix_table(alpha: np.ndarray, species_names) -> str:
    """Render an SRO matrix as the table the paper's figure plots."""
    names = list(species_names)
    if alpha.shape != (len(names), len(names)):
        raise ValueError(
            f"alpha shape {alpha.shape} does not match {len(names)} species"
        )
    rows = [[names[i]] + [alpha[i, j] for j in range(len(names))] for i in range(len(names))]
    return format_table([""] + names, rows, title="Warren-Cowley SRO", floatfmt="+.4f")
