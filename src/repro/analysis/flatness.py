"""Flat-histogram diagnostics.

- :func:`histogram_flatness` — the min/mean flatness statistic Wang-Landau
  thresholds on,
- :func:`count_round_trips` — energy-space tunneling: one round trip is a
  walk from the low edge of the range to the high edge and back.  Round-trip
  (tunneling) time is the standard cost metric for flat-histogram samplers
  and the E6 figure's y-axis: global DL proposals cut it dramatically
  because a single accepted move can cross the whole energy range.
"""

from __future__ import annotations

import numpy as np

__all__ = ["histogram_flatness", "count_round_trips"]


def histogram_flatness(histogram, mask=None) -> float:
    """min/mean of the histogram over ``mask`` (0 when any bin is empty)."""
    h = np.asarray(histogram, dtype=np.float64)
    if mask is not None:
        h = h[np.asarray(mask, dtype=bool)]
    if h.size == 0:
        return 0.0
    if np.any(h <= 0):
        return 0.0
    return float(h.min() / h.mean())


def count_round_trips(bin_trace, n_bins: int, edge_fraction: float = 0.1) -> int:
    """Number of completed low→high→low round trips in a bin-index trace.

    Parameters
    ----------
    bin_trace : sequence of int
        Visited bin index per step (e.g. recorded during a WL run).
    n_bins : int
        Total number of bins in the range.
    edge_fraction : float
        Bins within this fraction of either end count as "at the edge".
    """
    trace = np.asarray(bin_trace, dtype=np.int64)
    if trace.size == 0:
        return 0
    if not 0.0 < edge_fraction < 0.5:
        raise ValueError(f"edge_fraction must be in (0, 0.5), got {edge_fraction}")
    lo_edge = max(0, int(np.ceil(edge_fraction * n_bins)) - 1)
    hi_edge = n_bins - 1 - lo_edge
    trips = 0
    # State machine: wait for low edge, then high edge, then low edge again.
    state = 0  # 0: seeking low, 1: seeking high, 2: seeking low to finish
    for b in trace:
        if state == 0 and b <= lo_edge:
            state = 1
        elif state == 1 and b >= hi_edge:
            state = 2
        elif state == 2 and b <= lo_edge:
            trips += 1
            state = 1
    return trips
