"""Phase-transition detection from specific-heat curves.

The order–disorder transition temperature is estimated as the specific-heat
peak, refined by fitting a parabola through the three points around the
discrete maximum (removes the temperature-grid quantization).
"""

from __future__ import annotations

import numpy as np

__all__ = ["transition_temperature", "peak_full_width_half_max"]


def transition_temperature(temperatures, specific_heat) -> tuple[float, float]:
    """(T_c, C_max) with quadratic peak refinement.

    Falls back to the raw argmax when the peak touches a grid boundary.
    """
    t = np.asarray(temperatures, dtype=np.float64)
    c = np.asarray(specific_heat, dtype=np.float64)
    if t.shape != c.shape or t.ndim != 1 or t.size < 3:
        raise ValueError("need matching 1-D arrays with at least 3 points")
    k = int(np.argmax(c))
    if k == 0 or k == t.size - 1:
        return float(t[k]), float(c[k])
    # Parabola through (t[k-1..k+1], c[k-1..k+1]); vertex in closed form.
    t0, t1, t2 = t[k - 1 : k + 2]
    c0, c1, c2 = c[k - 1 : k + 2]
    denom = (t0 - t1) * (t0 - t2) * (t1 - t2)
    a = (t2 * (c1 - c0) + t1 * (c0 - c2) + t0 * (c2 - c1)) / denom
    b = (t2**2 * (c0 - c1) + t1**2 * (c2 - c0) + t0**2 * (c1 - c2)) / denom
    if a >= 0:  # degenerate/flat: keep the grid point
        return float(t1), float(c1)
    tc = -b / (2.0 * a)
    cc = c1 + a * (tc - t1) ** 2 + (2 * a * t1 + b) * (tc - t1)
    # Vertex value directly: c(tc) = c_vertex; recompute robustly.
    cc = a * tc**2 + b * tc + (c1 - a * t1**2 - b * t1)
    return float(tc), float(cc)


def peak_full_width_half_max(temperatures, specific_heat) -> float:
    """FWHM of the specific-heat peak (transition sharpness; finite-size
    scaling narrows it — the E3 size sweep reports this)."""
    t = np.asarray(temperatures, dtype=np.float64)
    c = np.asarray(specific_heat, dtype=np.float64)
    k = int(np.argmax(c))
    half = c[k] / 2.0

    def cross(idx_range) -> float | None:
        prev = None
        for i in idx_range:
            if prev is not None:
                lo, hi = (prev, i) if t[i] > t[prev] else (i, prev)
                if (c[lo] - half) * (c[hi] - half) <= 0 and c[lo] != c[hi]:
                    frac = (half - c[lo]) / (c[hi] - c[lo])
                    return float(t[lo] + frac * (t[hi] - t[lo]))
            prev = i
        return None

    left = cross(range(k, -1, -1))
    right = cross(range(k, t.size))
    if left is None or right is None:
        return float("nan")
    return right - left
