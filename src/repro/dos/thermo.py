"""Thermodynamics from the density of states.

Given ``(E_k, ln g_k)`` every canonical quantity follows from log-domain
sums (this is the whole point of evaluating the DoS directly — one run
yields *all* temperatures)::

    ln Z(β)  = logsumexp_k [ ln g_k − β E_k ]
    p_k(β)   = exp(ln g_k − β E_k − ln Z)
    U(β)     = Σ p_k E_k
    C(β)     = β² (Σ p_k E_k² − U²) / k_B·T² · ...   (see code for units)
    F(β)     = −ln Z / β
    S(β)     = (U − F)/T

Relative vs absolute: Wang-Landau produces ln g up to a constant.  U and C
are invariant under that constant; F and S shift by ``k_B·T·c`` and
``k_B·c``.  :func:`normalize_ln_g` pins the constant using the known total
state count (``Σ g = n_species^N`` or a multinomial for fixed composition).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.util.numerics import logsumexp

__all__ = ["ThermoTable", "thermodynamics", "normalize_ln_g", "reweight_observable",
           "log_total_states", "log_multinomial"]


@dataclass
class ThermoTable:
    """Canonical quantities on a temperature grid (one row per T)."""

    temperatures: np.ndarray
    log_z: np.ndarray
    internal_energy: np.ndarray
    specific_heat: np.ndarray  # per the full system; divide by N for per-site
    free_energy: np.ndarray
    entropy: np.ndarray
    kb: float

    def per_site(self, n_sites: int) -> "ThermoTable":
        """Intensive version (divides extensive columns by ``n_sites``)."""
        return ThermoTable(
            temperatures=self.temperatures,
            log_z=self.log_z / n_sites,
            internal_energy=self.internal_energy / n_sites,
            specific_heat=self.specific_heat / n_sites,
            free_energy=self.free_energy / n_sites,
            entropy=self.entropy / n_sites,
            kb=self.kb,
        )

    @property
    def peak_temperature(self) -> float:
        """Temperature of the specific-heat maximum (transition estimate)."""
        return float(self.temperatures[int(np.argmax(self.specific_heat))])


def _clean(energies, ln_g):
    energies = np.asarray(energies, dtype=np.float64)
    ln_g = np.asarray(ln_g, dtype=np.float64)
    if energies.shape != ln_g.shape or energies.ndim != 1:
        raise ValueError(
            f"energies and ln_g must be matching 1-D arrays, got "
            f"{energies.shape} vs {ln_g.shape}"
        )
    keep = np.isfinite(ln_g)
    if not keep.any():
        raise ValueError("ln_g has no finite entries")
    return energies[keep], ln_g[keep]


def thermodynamics(energies, ln_g, temperatures, kb: float = 1.0) -> ThermoTable:
    """Canonical thermodynamics over a temperature grid.

    Parameters
    ----------
    energies, ln_g : array_like
        Density of states (−inf entries are dropped).
    temperatures : array_like
        Strictly positive temperatures (same units as 1/(kb·β)).
    kb : float
        Boltzmann constant (1 for reduced units; ``KB_EV_PER_K`` for eV/K).
    """
    energies, ln_g = _clean(energies, ln_g)
    temperatures = np.atleast_1d(np.asarray(temperatures, dtype=np.float64))
    if np.any(temperatures <= 0):
        raise ValueError("temperatures must be strictly positive")
    n_t = temperatures.shape[0]
    log_z = np.empty(n_t)
    u = np.empty(n_t)
    c = np.empty(n_t)
    # Shift energies by E_min for conditioning; ln Z is shifted back below.
    e0 = energies.min()
    e_shift = energies - e0
    for k, t in enumerate(temperatures):
        beta = 1.0 / (kb * t)
        w = ln_g - beta * e_shift
        lz = logsumexp(w)
        p = np.exp(w - lz)
        mean_e = float(np.dot(p, e_shift))
        mean_e2 = float(np.dot(p, e_shift**2))
        log_z[k] = lz - beta * e0
        u[k] = mean_e + e0
        c[k] = (mean_e2 - mean_e**2) / (kb * t**2)
    free = -kb * temperatures * log_z
    entropy = (u - free) / temperatures
    return ThermoTable(
        temperatures=temperatures,
        log_z=log_z,
        internal_energy=u,
        specific_heat=c,
        free_energy=free,
        entropy=entropy,
        kb=kb,
    )


def log_total_states(n_sites: int, n_species: int) -> float:
    """ln of the unconstrained state count ``n_species^n_sites``."""
    return n_sites * float(np.log(n_species))


def log_multinomial(counts) -> float:
    """ln of the fixed-composition state count ``N! / Π n_s!``."""
    counts = np.asarray(counts, dtype=np.float64)
    return float(gammaln(counts.sum() + 1.0) - gammaln(counts + 1.0).sum())


def normalize_ln_g(ln_g, log_total: float) -> np.ndarray:
    """Shift ``ln_g`` so that ``logsumexp(ln_g) = log_total``.

    ``log_total`` is :func:`log_total_states` for unconstrained models or
    :func:`log_multinomial` for canonical (fixed-composition) sampling.
    −inf entries stay −inf.
    """
    ln_g = np.asarray(ln_g, dtype=np.float64)
    finite = np.isfinite(ln_g)
    if not finite.any():
        raise ValueError("ln_g has no finite entries")
    shift = log_total - logsumexp(ln_g[finite])
    out = ln_g.copy()
    out[finite] += shift
    return out


def reweight_observable(energies, ln_g, micro_means, temperatures, kb: float = 1.0) -> np.ndarray:
    """Canonical average ⟨O⟩(T) from microcanonical bin means ⟨O⟩(E).

    ``micro_means`` may contain NaN at unvisited bins; those bins are
    excluded (consistently from numerator and denominator).
    """
    energies = np.asarray(energies, dtype=np.float64)
    ln_g = np.asarray(ln_g, dtype=np.float64)
    micro = np.asarray(micro_means, dtype=np.float64)
    if not (energies.shape == ln_g.shape == micro.shape):
        raise ValueError("energies, ln_g and micro_means must share a shape")
    keep = np.isfinite(ln_g) & np.isfinite(micro)
    if not keep.any():
        raise ValueError("no bins with both finite ln_g and finite observable")
    energies, ln_g, micro = energies[keep], ln_g[keep], micro[keep]
    temperatures = np.atleast_1d(np.asarray(temperatures, dtype=np.float64))
    out = np.empty(temperatures.shape[0])
    e0 = energies.min()
    for k, t in enumerate(temperatures):
        beta = 1.0 / (kb * t)
        w = ln_g - beta * (energies - e0)
        lz = logsumexp(w)
        out[k] = float(np.dot(np.exp(w - lz), micro))
    return out
