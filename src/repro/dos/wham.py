"""WHAM: multi-histogram reweighting (Ferrenberg & Swendsen 1989).

An *independent* route to the density of states: combine energy histograms
from K canonical runs at inverse temperatures β_k into one ln g(E) by
iterating the self-consistent equations (all in the log domain)::

    ln g(E)  = ln Σ_k H_k(E)  −  ln Σ_k N_k exp(f_k − β_k E)
    f_k      = −ln Σ_E g(E) exp(−β_k E)

DeepThermo's claim is that direct flat-histogram DoS evaluation beats
per-temperature sampling; WHAM is exactly that per-temperature alternative,
so it doubles as a cross-check of the Wang-Landau pipeline (they must agree
where the canonical runs overlap) and as the comparison baseline's
post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.numerics import logsumexp

__all__ = ["WhamResult", "wham"]


@dataclass
class WhamResult:
    """Converged WHAM estimate.

    ``ln_g`` is relative (min over supported bins = 0) and −inf at bins no
    run ever visited.  ``log_weights`` are the per-run free energies f_k.
    """

    energies: np.ndarray
    ln_g: np.ndarray
    log_weights: np.ndarray
    n_iterations: int
    converged: bool
    max_delta: float

    @property
    def supported(self) -> np.ndarray:
        return np.isfinite(self.ln_g)


def wham(energies, histograms, betas, tol: float = 1e-8,
         max_iterations: int = 10_000) -> WhamResult:
    """Solve the WHAM equations.

    Parameters
    ----------
    energies : (M,) array
        Common energy-bin centers.
    histograms : (K, M) array
        Visit counts of run k in bin m.
    betas : (K,) array
        Inverse temperature of each run.
    tol : float
        Convergence threshold on max |Δf_k| between iterations.
    max_iterations : int

    Returns
    -------
    WhamResult
    """
    energies = np.asarray(energies, dtype=np.float64)
    hist = np.asarray(histograms, dtype=np.float64)
    betas = np.asarray(betas, dtype=np.float64)
    if energies.ndim != 1:
        raise ValueError(f"energies must be 1-D, got shape {energies.shape}")
    if hist.shape != (betas.shape[0], energies.shape[0]):
        raise ValueError(
            f"histograms must have shape ({betas.shape[0]}, {energies.shape[0]}), "
            f"got {hist.shape}"
        )
    if np.any(hist < 0):
        raise ValueError("histogram counts must be non-negative")
    counts_per_run = hist.sum(axis=1)
    if np.any(counts_per_run == 0):
        raise ValueError("every run must contain at least one sample")

    total_per_bin = hist.sum(axis=0)
    support = total_per_bin > 0
    if not support.any():
        raise ValueError("no visited bins")
    log_total = np.full(energies.shape, -np.inf)
    log_total[support] = np.log(total_per_bin[support])
    log_counts = np.log(counts_per_run)

    # Shift energies for conditioning (cancels in the relative ln g).
    e0 = energies.min()
    e_shift = energies - e0

    f = np.zeros(betas.shape[0])
    ln_g = np.full(energies.shape, -np.inf)
    converged = False
    max_delta = np.inf
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Denominator: ln Σ_k N_k exp(f_k − β_k E), per bin.
        denom_terms = log_counts[:, None] + f[:, None] - betas[:, None] * e_shift[None, :]
        log_denom = logsumexp(denom_terms, axis=0)
        ln_g = np.where(support, log_total - log_denom, -np.inf)
        # Update free energies: f_k = −ln Σ_E g(E) exp(−β_k E).
        new_f = np.empty_like(f)
        for k in range(betas.shape[0]):
            new_f[k] = -logsumexp(ln_g[support] - betas[k] * e_shift[support])
        new_f -= new_f[0]  # gauge: f_0 = 0
        max_delta = float(np.max(np.abs(new_f - f)))
        f = new_f
        if max_delta < tol:
            converged = True
            break

    out = ln_g.copy()
    out[support] -= out[support].min()
    return WhamResult(
        energies=energies.copy(),
        ln_g=out,
        log_weights=f,
        n_iterations=iteration,
        converged=converged,
        max_delta=max_delta,
    )
