"""Stitch per-window ln g pieces into a global density of states.

Each REWL window produces ``ln g`` up to an arbitrary additive constant.
Adjacent windows share overlap bins; the stitcher aligns window k+1 to the
already-stitched left part by the mean offset over the commonly visited
overlap bins, then blends the overlap with a linear ramp (left weight 1→0)
so the join is smooth even when the two estimates disagree slightly.

The alignment residual (RMS disagreement over the overlap after shifting)
is reported per joint — it is the stitching quality metric printed by
experiment E2 and checked in the integration tests.

Best-effort partial stitching
-----------------------------
A degraded campaign (quarantined or missing windows, see
:mod:`repro.resilience`) still deserves its surviving data.  With
``skip=(...)`` and ``allow_gaps=True``, :func:`stitch_windows` stitches
*around* the excluded windows: surviving neighbors that still share
commonly visited bins are joined normally; where the chain breaks, a new
**segment** starts with its own arbitrary additive constant, and the bins
covered by no surviving window are recorded as ``coverage_gaps``.  The
result is explicit about its incompleteness — ``StitchedDoS.complete`` is
False, and cross-segment ln g differences are meaningless (each segment is
only internally relative) — so a partial DoS can never masquerade as a
complete one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.windows import WindowSpec
from repro.sampling.binning import EnergyGrid

__all__ = ["StitchedDoS", "stitch_windows", "join_pair", "coverage_gaps"]


@dataclass
class StitchedDoS:
    """Global relative ln g over the global grid.

    ``ln_g`` is −inf at unvisited bins and shifted so the minimum visited
    value is 0; apply :func:`repro.dos.thermo.normalize_ln_g` for absolute
    normalization.

    ``segments`` groups the included window indices into connected runs —
    within a segment all pieces share one additive constant; *between*
    segments the constants are unrelated.  ``coverage_gaps`` lists the
    inclusive global-bin ranges covered by no included window, and
    ``skipped`` the window indices excluded from the stitch.  A complete
    stitch has one segment, no gaps, and nothing skipped.
    """

    grid: EnergyGrid
    ln_g: np.ndarray
    visited: np.ndarray
    joint_residuals: np.ndarray
    segments: list[list[int]] = field(default_factory=list)
    coverage_gaps: list[tuple[int, int]] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)

    @property
    def span(self) -> float:
        """max − min of ln g over visited bins (the paper's ~e^10,000 claim
        is about this span at their system size)."""
        vals = self.ln_g[self.visited]
        return float(vals.max() - vals.min()) if vals.size else 0.0

    @property
    def complete(self) -> bool:
        """True iff nothing was skipped and the stitch is one connected run."""
        return not self.skipped and not self.coverage_gaps and len(self.segments) <= 1

    def energies(self) -> np.ndarray:
        """Centers of the visited bins."""
        return self.grid.centers[self.visited]

    def values(self) -> np.ndarray:
        """ln g at the visited bins."""
        return self.ln_g[self.visited]


def join_pair(
    left: np.ndarray,
    left_visited: np.ndarray,
    right: np.ndarray,
    right_visited: np.ndarray,
    lo: int,
    hi: int,
) -> tuple[float, float]:
    """Alignment shift and residual for two global-indexed pieces.

    Parameters
    ----------
    left, right : ndarray over global bins (−inf / arbitrary where unvisited)
    left_visited, right_visited : bool masks over global bins
    lo, hi : inclusive global-bin overlap range

    Returns
    -------
    (shift, residual)
        ``right + shift`` best matches ``left`` over the common overlap
        bins; ``residual`` is the post-shift RMS mismatch.

    Raises
    ------
    ValueError
        When no overlap bin was visited by both pieces (the windows never
        connected — increase overlap or sampling).
    """
    common = np.zeros_like(left_visited)
    common[lo : hi + 1] = True
    common &= left_visited & right_visited
    if not common.any():
        raise ValueError(
            f"no commonly visited bins in overlap [{lo}, {hi}]; "
            "windows are not connected"
        )
    diff = left[common] - right[common]
    shift = float(diff.mean())
    residual = float(np.sqrt(np.mean((diff - shift) ** 2)))
    return shift, residual


def coverage_gaps(
    n_bins: int, windows: list[WindowSpec], included: list[int]
) -> list[tuple[int, int]]:
    """Inclusive global-bin runs covered by none of the ``included`` windows.

    A pure function of the window *specs* (not of what was visited), so the
    recorded gaps of a degraded run are deterministic.
    """
    covered = np.zeros(n_bins, dtype=bool)
    for k in included:
        spec = windows[k]
        covered[spec.lo_bin : spec.hi_bin + 1] = True
    gaps: list[tuple[int, int]] = []
    b = 0
    while b < n_bins:
        if covered[b]:
            b += 1
            continue
        start = b
        while b < n_bins and not covered[b]:
            b += 1
        gaps.append((start, b - 1))
    return gaps


def stitch_windows(
    global_grid: EnergyGrid,
    windows: list[WindowSpec],
    pieces: list[np.ndarray],
    visited: list[np.ndarray],
    skip: tuple[int, ...] | list[int] = (),
    allow_gaps: bool = False,
) -> StitchedDoS:
    """Assemble window pieces into a global ln g (see module docstring).

    ``skip`` excludes window indices (quarantined/missing); their ``pieces``
    entries may be None.  Without ``allow_gaps`` any disconnection — a
    skipped window whose surviving neighbors don't connect, or an overlap
    with no commonly visited bins — raises ``ValueError`` exactly as
    before; with it, the stitch continues in a new segment and the result
    records its gaps.
    """
    if not (len(windows) == len(pieces) == len(visited)):
        raise ValueError(
            f"length mismatch: {len(windows)} windows, {len(pieces)} pieces, "
            f"{len(visited)} visited masks"
        )
    skipped = sorted(set(int(s) for s in skip))
    for s in skipped:
        if not 0 <= s < len(windows):
            raise ValueError(f"skip index {s} out of range for {len(windows)} windows")
    included = [k for k in range(len(windows)) if k not in skipped]
    n_bins = global_grid.n_bins
    gaps = coverage_gaps(n_bins, windows, included)
    if not included:
        if not allow_gaps:
            raise ValueError("all windows skipped and allow_gaps is False")
        return StitchedDoS(
            grid=global_grid,
            ln_g=np.full(n_bins, -np.inf),
            visited=np.zeros(n_bins, dtype=bool),
            joint_residuals=np.asarray([]),
            segments=[],
            coverage_gaps=gaps,
            skipped=skipped,
        )
    out = np.full(n_bins, -np.inf)
    out_visited = np.zeros(n_bins, dtype=bool)
    residuals = []

    # Expand each window piece onto global bins.
    def expand(k: int) -> tuple[np.ndarray, np.ndarray]:
        spec = windows[k]
        if pieces[k] is None or visited[k] is None:
            raise ValueError(f"window {k}: piece is missing but not skipped")
        if pieces[k].shape != (spec.n_bins,) or visited[k].shape != (spec.n_bins,):
            raise ValueError(
                f"window {k}: piece/visited shape must be ({spec.n_bins},)"
            )
        g = np.full(n_bins, -np.inf)
        v = np.zeros(n_bins, dtype=bool)
        g[spec.lo_bin : spec.hi_bin + 1] = pieces[k]
        v[spec.lo_bin : spec.hi_bin + 1] = visited[k]
        g[~v] = -np.inf
        return g, v

    first = included[0]
    g0, v0 = expand(first)
    out[v0] = g0[v0]
    out_visited |= v0
    segments: list[list[int]] = [[first]]

    for prev, k in zip(included, included[1:]):
        gk, vk = expand(k)
        ov = windows[prev].overlap_bins(windows[k])
        shift = None
        if ov is None:
            # Surviving neighbors don't even share spec bins (a quarantine
            # hole too wide to bridge).
            if not allow_gaps:
                raise ValueError(f"windows {prev} and {k} do not overlap")
        else:
            try:
                shift, residual = join_pair(out, out_visited, gk, vk, ov[0], ov[1])
            except ValueError:
                if not allow_gaps:
                    raise
            else:
                residuals.append(residual)
        if shift is None:
            # Disconnected: start a new segment with its own constant.
            out[vk] = gk[vk]
            out_visited |= vk
            segments.append([k])
            continue
        gk = gk + shift
        lo, hi = ov
        # Linear ramp across the overlap: weight of the left part 1 → 0.
        for b in range(n_bins):
            if not vk[b]:
                continue
            if out_visited[b] and lo <= b <= hi and hi > lo:
                w_left = (hi - b) / (hi - lo)
                out[b] = w_left * out[b] + (1.0 - w_left) * gk[b]
            elif out_visited[b] and not (lo <= b <= hi):
                # Visited by both outside the nominal overlap (can happen
                # when windows share more bins than the nominal range).
                out[b] = 0.5 * (out[b] + gk[b])
            else:
                out[b] = gk[b]
        out_visited |= vk
        segments[-1].append(k)

    if out_visited.any():
        out[out_visited] -= out[out_visited].min()
    return StitchedDoS(
        grid=global_grid,
        ln_g=out,
        visited=out_visited,
        joint_residuals=np.asarray(residuals),
        segments=segments,
        coverage_gaps=gaps,
        skipped=skipped,
    )
