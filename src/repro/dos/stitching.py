"""Stitch per-window ln g pieces into a global density of states.

Each REWL window produces ``ln g`` up to an arbitrary additive constant.
Adjacent windows share overlap bins; the stitcher aligns window k+1 to the
already-stitched left part by the mean offset over the commonly visited
overlap bins, then blends the overlap with a linear ramp (left weight 1→0)
so the join is smooth even when the two estimates disagree slightly.

The alignment residual (RMS disagreement over the overlap after shifting)
is reported per joint — it is the stitching quality metric printed by
experiment E2 and checked in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.windows import WindowSpec
from repro.sampling.binning import EnergyGrid

__all__ = ["StitchedDoS", "stitch_windows", "join_pair"]


@dataclass
class StitchedDoS:
    """Global relative ln g over the global grid.

    ``ln_g`` is −inf at unvisited bins and shifted so the minimum visited
    value is 0; apply :func:`repro.dos.thermo.normalize_ln_g` for absolute
    normalization.
    """

    grid: EnergyGrid
    ln_g: np.ndarray
    visited: np.ndarray
    joint_residuals: np.ndarray

    @property
    def span(self) -> float:
        """max − min of ln g over visited bins (the paper's ~e^10,000 claim
        is about this span at their system size)."""
        vals = self.ln_g[self.visited]
        return float(vals.max() - vals.min()) if vals.size else 0.0

    def energies(self) -> np.ndarray:
        """Centers of the visited bins."""
        return self.grid.centers[self.visited]

    def values(self) -> np.ndarray:
        """ln g at the visited bins."""
        return self.ln_g[self.visited]


def join_pair(
    left: np.ndarray,
    left_visited: np.ndarray,
    right: np.ndarray,
    right_visited: np.ndarray,
    lo: int,
    hi: int,
) -> tuple[float, float]:
    """Alignment shift and residual for two global-indexed pieces.

    Parameters
    ----------
    left, right : ndarray over global bins (−inf / arbitrary where unvisited)
    left_visited, right_visited : bool masks over global bins
    lo, hi : inclusive global-bin overlap range

    Returns
    -------
    (shift, residual)
        ``right + shift`` best matches ``left`` over the common overlap
        bins; ``residual`` is the post-shift RMS mismatch.

    Raises
    ------
    ValueError
        When no overlap bin was visited by both pieces (the windows never
        connected — increase overlap or sampling).
    """
    common = np.zeros_like(left_visited)
    common[lo : hi + 1] = True
    common &= left_visited & right_visited
    if not common.any():
        raise ValueError(
            f"no commonly visited bins in overlap [{lo}, {hi}]; "
            "windows are not connected"
        )
    diff = left[common] - right[common]
    shift = float(diff.mean())
    residual = float(np.sqrt(np.mean((diff - shift) ** 2)))
    return shift, residual


def stitch_windows(
    global_grid: EnergyGrid,
    windows: list[WindowSpec],
    pieces: list[np.ndarray],
    visited: list[np.ndarray],
) -> StitchedDoS:
    """Assemble window pieces into a global ln g (see module docstring)."""
    if not (len(windows) == len(pieces) == len(visited)):
        raise ValueError(
            f"length mismatch: {len(windows)} windows, {len(pieces)} pieces, "
            f"{len(visited)} visited masks"
        )
    n_bins = global_grid.n_bins
    out = np.full(n_bins, -np.inf)
    out_visited = np.zeros(n_bins, dtype=bool)
    residuals = []

    # Expand each window piece onto global bins.
    def expand(k: int) -> tuple[np.ndarray, np.ndarray]:
        spec = windows[k]
        if pieces[k].shape != (spec.n_bins,) or visited[k].shape != (spec.n_bins,):
            raise ValueError(
                f"window {k}: piece/visited shape must be ({spec.n_bins},)"
            )
        g = np.full(n_bins, -np.inf)
        v = np.zeros(n_bins, dtype=bool)
        g[spec.lo_bin : spec.hi_bin + 1] = pieces[k]
        v[spec.lo_bin : spec.hi_bin + 1] = visited[k]
        g[~v] = -np.inf
        return g, v

    g0, v0 = expand(0)
    out[v0] = g0[v0]
    out_visited |= v0

    for k in range(1, len(windows)):
        gk, vk = expand(k)
        ov = windows[k - 1].overlap_bins(windows[k])
        if ov is None:  # make_windows guarantees overlap; guard anyway
            raise ValueError(f"windows {k - 1} and {k} do not overlap")
        shift, residual = join_pair(out, out_visited, gk, vk, ov[0], ov[1])
        residuals.append(residual)
        gk = gk + shift
        lo, hi = ov
        # Linear ramp across the overlap: weight of the left part 1 → 0.
        for b in range(n_bins):
            if not vk[b]:
                continue
            if out_visited[b] and lo <= b <= hi and hi > lo:
                w_left = (hi - b) / (hi - lo)
                out[b] = w_left * out[b] + (1.0 - w_left) * gk[b]
            elif out_visited[b] and not (lo <= b <= hi):
                # Visited by both outside the nominal overlap (can happen
                # when windows share more bins than the nominal range).
                out[b] = 0.5 * (out[b] + gk[b])
            else:
                out[b] = gk[b]
        out_visited |= vk

    if out_visited.any():
        out[out_visited] -= out[out_visited].min()
    return StitchedDoS(
        grid=global_grid,
        ln_g=out,
        visited=out_visited,
        joint_residuals=np.asarray(residuals),
    )
