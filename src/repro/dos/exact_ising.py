"""Exact finite-lattice 2D Ising references.

Two independent ground truths for validation experiment E1:

- :func:`exact_ising_dos_bruteforce` — the exact density of states by full
  enumeration (up to ~24 spins),
- :func:`kaufman_log_partition` — Kaufman's closed-form partition function
  for an m×n torus (Kaufman 1949), valid at *any* size, evaluated in the
  log domain.  Internal energy and specific heat follow by numerical
  differentiation and anchor the WL → thermodynamics pipeline at sizes far
  beyond enumeration.

Conventions: ``E = −J Σ_<ij> s_i s_j``, ``k_B = 1``, zero field.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.numerics import logsumexp

__all__ = [
    "exact_ising_dos_bruteforce",
    "kaufman_log_partition",
    "exact_ising_internal_energy",
    "exact_ising_specific_heat",
    "onsager_critical_temperature",
]


def onsager_critical_temperature(coupling: float = 1.0) -> float:
    """Infinite-lattice critical temperature ``2J / ln(1 + √2)``."""
    return 2.0 * coupling / math.log(1.0 + math.sqrt(2.0))


def exact_ising_dos_bruteforce(length: int, width: int | None = None,
                               coupling: float = 1.0):
    """Exact (energies, degeneracies) by enumeration of all 2^N states."""
    from repro.hamiltonians.enumeration import enumerate_density_of_states
    from repro.hamiltonians.ising import IsingHamiltonian
    from repro.lattice.structures import square_lattice

    ham = IsingHamiltonian(square_lattice(length, width), coupling=coupling)
    return enumerate_density_of_states(ham)


# --------------------------------------------------------------- Kaufman Z


def _log_cosh(x: np.ndarray) -> np.ndarray:
    """ln cosh(x), overflow-safe."""
    ax = np.abs(x)
    return ax - math.log(2.0) + np.log1p(np.exp(-2.0 * ax))


def _log_sinh(x: float) -> tuple[float, float]:
    """(ln |sinh(x)|, sign) overflow-safe; sign 0 at x = 0."""
    if x == 0.0:
        return -math.inf, 0.0
    ax = abs(x)
    val = ax - math.log(2.0) + math.log1p(-math.exp(-2.0 * ax))
    return val, math.copysign(1.0, x)


def kaufman_log_partition(n_rows: int, n_cols: int, beta: float,
                          coupling: float = 1.0) -> float:
    """Exact ``ln Z`` of the ``n_rows × n_cols`` Ising torus.

    Kaufman's formula::

        Z = ½ (2 sinh 2K)^{mn/2} (P₁ + P₂ + P₃ + P₄)
        P₁ = Π_r 2 cosh(m γ_{2r+1}/2),   P₂ = Π_r 2 sinh(m γ_{2r+1}/2)
        P₃ = Π_r 2 cosh(m γ_{2r}/2),     P₄ = Π_r 2 sinh(m γ_{2r}/2)

    with ``cosh γ_l = cosh 2K coth 2K − cos(π l/n)`` (γ_l ≥ 0 for l ≥ 1)
    and the special member ``γ₀ = 2K + ln tanh K``, which changes sign at
    the critical point and makes P₄ signed — handled in the log domain with
    explicit sign bookkeeping.
    """
    if n_rows < 1 or n_cols < 1:
        raise ValueError(f"lattice must be at least 1x1, got {n_rows}x{n_cols}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    K = beta * coupling
    m, n = n_rows, n_cols
    c2k = math.cosh(2.0 * K)
    s2k = math.sinh(2.0 * K)
    base = c2k * c2k / s2k  # cosh2K · coth2K

    ls = np.arange(2 * n)
    cos_term = np.cos(np.pi * ls / n)
    ch_gamma = base - cos_term
    # γ_l = arccosh, stable for arguments slightly below 1 from roundoff.
    ch_gamma = np.maximum(ch_gamma, 1.0)
    gamma = np.log(ch_gamma + np.sqrt(np.maximum(ch_gamma**2 - 1.0, 0.0)))
    # Replace the l = 0 member with its signed closed form.
    gamma0 = 2.0 * K + math.log(math.tanh(K))
    gamma[0] = gamma0

    half_m = 0.5 * m
    odd = gamma[1::2]
    even = gamma[0::2]

    log_p1 = float(np.sum(math.log(2.0) + _log_cosh(half_m * odd)))
    log_p2 = float(np.sum(math.log(2.0) + np.array([_log_sinh(half_m * g)[0] for g in odd])))
    log_p3 = float(np.sum(math.log(2.0) + _log_cosh(half_m * even)))
    sinh_terms = [_log_sinh(half_m * g) for g in even]
    log_p4 = float(sum(math.log(2.0) + t[0] for t in sinh_terms))
    sign_p4 = 1.0
    for _v, s in sinh_terms:
        sign_p4 *= s

    positives = [log_p1, log_p2, log_p3]
    if sign_p4 > 0:
        positives.append(log_p4)
        log_sum = logsumexp(np.array(positives))
    elif sign_p4 == 0.0:
        log_sum = logsumexp(np.array(positives))
    else:
        log_pos = logsumexp(np.array(positives))
        if log_p4 >= log_pos:
            raise ArithmeticError("Kaufman sum became non-positive (numerical)")
        log_sum = log_pos + math.log1p(-math.exp(log_p4 - log_pos))

    return float(-math.log(2.0) + 0.5 * m * n * math.log(2.0 * s2k) + log_sum)


def exact_ising_internal_energy(n_rows: int, n_cols: int, temperature: float,
                                coupling: float = 1.0, d_beta: float = 1e-6) -> float:
    """Exact ``U(T) = −∂ ln Z/∂β`` by central difference of Kaufman's ln Z."""
    beta = 1.0 / temperature
    lz_plus = kaufman_log_partition(n_rows, n_cols, beta + d_beta, coupling)
    lz_minus = kaufman_log_partition(n_rows, n_cols, beta - d_beta, coupling)
    return -(lz_plus - lz_minus) / (2.0 * d_beta)


def exact_ising_specific_heat(n_rows: int, n_cols: int, temperature: float,
                              coupling: float = 1.0, d_temp: float = 1e-4) -> float:
    """Exact ``C(T) = ∂U/∂T`` by central difference (k_B = 1)."""
    u_plus = exact_ising_internal_energy(n_rows, n_cols, temperature + d_temp, coupling)
    u_minus = exact_ising_internal_energy(n_rows, n_cols, temperature - d_temp, coupling)
    return (u_plus - u_minus) / (2.0 * d_temp)
