"""Density-of-states post-processing (S7).

Everything here operates on ``ln g(E)`` — the paper's DoS spans ~e^10,000,
so nothing is ever exponentiated without a log-sum-exp shift.

- :mod:`repro.dos.stitching` — join per-window REWL pieces into one global
  ln g by matching the overlap regions,
- :mod:`repro.dos.thermo` — partition function, internal energy, specific
  heat, free energy, entropy, and canonical reweighting of microcanonical
  observables, all from ``(E, ln g)``,
- :mod:`repro.dos.exact_ising` — exact finite-lattice 2D Ising references
  (brute-force DoS for tiny systems; Kaufman's closed-form partition
  function for arbitrary sizes) used by validation experiment E1.
"""

from repro.dos.stitching import StitchedDoS, stitch_windows, join_pair
from repro.dos.thermo import (
    thermodynamics,
    normalize_ln_g,
    reweight_observable,
    ThermoTable,
)
from repro.dos.wham import WhamResult, wham
from repro.dos.exact_ising import (
    exact_ising_dos_bruteforce,
    kaufman_log_partition,
    exact_ising_internal_energy,
    exact_ising_specific_heat,
    onsager_critical_temperature,
)

__all__ = [
    "StitchedDoS",
    "stitch_windows",
    "join_pair",
    "thermodynamics",
    "normalize_ln_g",
    "reweight_observable",
    "ThermoTable",
    "WhamResult",
    "wham",
    "exact_ising_dos_bruteforce",
    "kaufman_log_partition",
    "exact_ising_internal_energy",
    "exact_ising_specific_heat",
    "onsager_critical_temperature",
]
