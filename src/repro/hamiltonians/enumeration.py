"""Exhaustive enumeration for tiny systems.

Brute-force ground truth: every sampler correctness test ultimately reduces
to "does the sampled/estimated distribution match exact enumeration on a
system small enough to enumerate?".  Works for ``n_species ** n_sites`` up to
~10⁷ states (chunked, vectorized through ``energies``).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.hamiltonians.base import Hamiltonian

__all__ = [
    "enumerate_energies",
    "enumerate_density_of_states",
    "fixed_composition_configs",
]

_MAX_STATES = 20_000_000


def _all_configs(n_sites: int, n_species: int) -> np.ndarray:
    """All n_species^n_sites configurations, shape (S, n_sites), int8."""
    n_states = n_species**n_sites
    if n_states > _MAX_STATES:
        raise ValueError(
            f"{n_species}^{n_sites} = {n_states} states is too many to enumerate"
        )
    # Mixed-radix counting, vectorized.
    states = np.arange(n_states, dtype=np.int64)
    out = np.empty((n_states, n_sites), dtype=np.int8)
    for k in range(n_sites - 1, -1, -1):
        out[:, k] = states % n_species
        states //= n_species
    return out


def fixed_composition_configs(counts) -> np.ndarray:
    """All distinct configurations with exactly the given composition.

    Generates each arrangement exactly once by choosing site subsets per
    species (nested ``itertools.combinations``), so the cost is the
    multinomial coefficient itself — never the factorial of the site count.

    Parameters
    ----------
    counts : sequence of int
        Atoms per species; the number of configurations is the multinomial
        coefficient, which must stay below ~10⁷.

    Returns
    -------
    numpy.ndarray, shape (n_configs, n_sites), dtype int8
    """
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError(f"species counts must be non-negative, got {counts}")
    n_sites = int(counts.sum())
    if n_sites == 0:
        raise ValueError("composition must contain at least one site")
    from scipy.special import gammaln

    log_n = float(gammaln(n_sites + 1) - gammaln(counts + 1.0).sum())
    if log_n > np.log(_MAX_STATES):
        raise ValueError(
            f"~e^{log_n:.0f} fixed-composition configurations is too many to enumerate"
        )

    rows: list[np.ndarray] = []
    template = np.empty(n_sites, dtype=np.int8)

    def place(species: int, free_positions: tuple[int, ...]) -> None:
        if species == len(counts) - 1:
            cfg = template.copy()
            cfg[list(free_positions)] = species
            rows.append(cfg)
            return
        for chosen in itertools.combinations(free_positions, int(counts[species])):
            template[list(chosen)] = species
            remaining = tuple(p for p in free_positions if p not in set(chosen))
            place(species + 1, remaining)

    place(0, tuple(range(n_sites)))
    return np.array(rows, dtype=np.int8)


def enumerate_energies(ham: Hamiltonian, counts=None, chunk: int = 65536) -> np.ndarray:
    """Energies of *all* configurations (optionally at fixed composition).

    Parameters
    ----------
    ham : Hamiltonian
    counts : sequence of int, optional
        If given, restrict to configurations with exactly this composition
        (the canonical HEA state space); otherwise enumerate everything
        (the Ising/Potts state space).
    chunk : int
        Batch size for the vectorized energy evaluation.
    """
    if counts is not None:
        configs = fixed_composition_configs(counts)
    else:
        configs = _all_configs(ham.n_sites, ham.n_species)
    energies = np.empty(configs.shape[0], dtype=np.float64)
    for start in range(0, configs.shape[0], chunk):
        stop = min(start + chunk, configs.shape[0])
        energies[start:stop] = ham.energies(configs[start:stop])
    return energies


def enumerate_density_of_states(
    ham: Hamiltonian, counts=None, decimals: int = 9
) -> tuple[np.ndarray, np.ndarray]:
    """Exact density of states by enumeration.

    Returns
    -------
    (energies, degeneracies)
        Sorted distinct energy levels (rounded to ``decimals``) and the exact
        integer count of configurations at each level.
    """
    energies = np.round(enumerate_energies(ham, counts=counts), decimals)
    levels, counts_per_level = np.unique(energies, return_counts=True)
    return levels, counts_per_level
