"""Energy models (S2).

All models expose the :class:`~repro.hamiltonians.base.Hamiltonian`
interface: total energy, O(z) incremental energy changes for swaps and
single-site mutations, batched energies for deep-learning proposals, and
rigorous energy bounds for Wang-Landau binning.

- :class:`PairHamiltonian` — generic per-shell pair-interaction model; the
  workhorse every concrete model builds on.
- :class:`IsingHamiltonian` — 2D/3D Ising (exactly checkable; validation).
- :class:`PottsHamiltonian` — q-state Potts.
- :class:`EPIHamiltonian` / :class:`NbMoTaWHamiltonian` — effective
  pair-interaction model of the paper's NbMoTaW-class refractory HEA.
"""

from repro.hamiltonians.base import Hamiltonian
from repro.hamiltonians.pair import PairHamiltonian
from repro.hamiltonians.ising import IsingHamiltonian
from repro.hamiltonians.potts import PottsHamiltonian
from repro.hamiltonians.epi import (
    EPIHamiltonian,
    NbMoTaWHamiltonian,
    NBMOTAW_EPI_SHELL1,
    NBMOTAW_EPI_SHELL2,
    KB_EV_PER_K,
)
from repro.hamiltonians.enumeration import (
    enumerate_energies,
    enumerate_density_of_states,
    fixed_composition_configs,
)

__all__ = [
    "Hamiltonian",
    "PairHamiltonian",
    "IsingHamiltonian",
    "PottsHamiltonian",
    "EPIHamiltonian",
    "NbMoTaWHamiltonian",
    "NBMOTAW_EPI_SHELL1",
    "NBMOTAW_EPI_SHELL2",
    "KB_EV_PER_K",
    "enumerate_energies",
    "enumerate_density_of_states",
    "fixed_composition_configs",
]
