"""q-state Potts model.

Convention::

    E = -J · sum_<ij> δ(c_i, c_j)

The q = 2 Potts model maps onto the Ising model with J_Potts = 2·J_Ising (up
to a constant shift of J·n_bonds/2), which the test suite exploits as a
cross-model consistency check.  On the square lattice the model has a
continuous transition for q ≤ 4 and a first-order one for q ≥ 5 at
``T_c = J / (k·ln(1 + √q))`` — the first-order case stresses flat-histogram
samplers the same way the HEA order-disorder transition does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hamiltonians.pair import PairHamiltonian
from repro.lattice.structures import Lattice

__all__ = ["PottsHamiltonian"]


class PottsHamiltonian(PairHamiltonian):
    """Ferromagnetic q-state Potts model on any lattice.

    Parameters
    ----------
    lattice : Lattice
    q : int
        Number of states (>= 2).
    coupling : float
        J (> 0 ferromagnetic).
    """

    def __init__(self, lattice: Lattice, q: int = 3, coupling: float = 1.0):
        if q < 2:
            raise ValueError(f"Potts model needs q >= 2 states, got {q}")
        self.q = int(q)
        self.coupling = float(coupling)
        interaction = -self.coupling * np.eye(self.q)
        super().__init__(lattice, [interaction], name=f"potts{q}")

    def critical_temperature_square(self) -> float:
        """Exact T_c on the infinite square lattice (k_B = 1)."""
        if self.lattice.name != "square":
            raise ValueError("exact Potts T_c is only known for the square lattice")
        return self.coupling / math.log(1.0 + math.sqrt(self.q))

    def order_parameter(self, config: np.ndarray) -> float:
        """Standard Potts order parameter (q·max_fraction − 1)/(q − 1) ∈ [0, 1]."""
        counts = np.bincount(np.asarray(config, dtype=np.int64), minlength=self.q)
        return (self.q * counts.max() / self.n_sites - 1.0) / (self.q - 1.0)

    def order_parameters(self, configs: np.ndarray) -> np.ndarray:
        """Per-row order parameter of a config batch, ``(B, n) -> (B,)``."""
        configs = np.atleast_2d(np.asarray(configs, dtype=np.int64))
        counts = (configs[:, :, None] == np.arange(self.q)).sum(axis=1)
        return (self.q * counts.max(axis=1) / self.n_sites - 1.0) / (self.q - 1.0)
