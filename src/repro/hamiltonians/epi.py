"""Effective pair interaction (EPI) model for NbMoTaW-class HEAs.

The paper evaluates a quaternary refractory high entropy alloy (the NbMoTaW
family) with a cluster expansion fit to DFT.  That fit is not published as a
reusable artifact, so — per the substitution policy in DESIGN.md §4 — we ship
*literature-shaped* effective pair interactions: the sign structure and
magnitude scale follow the published first-principles studies of NbMoTaW
(strong Mo–Ta ordering on the first BCC shell, weaker Nb–W and Ta–W ordering,
near-neutral Nb–Ta and Mo–W), with values in eV.  What the experiments rely
on is exactly this sign/magnitude structure:

- an order–disorder transition at a few hundred to ~1500 K (E3),
- B2-type short-range order dominated by Mo–Ta pairs, with Warren–Cowley
  parameters whose *signs* match the EPI signs (E4),
- a density of states spanning ln g ≈ N·ln 4 (E2).

Units: energies in **eV**, temperatures in **K** via ``KB_EV_PER_K``.

Hot path: EPI is a two-shell :class:`PairHamiltonian`, so its ΔE kernels
are the precomputed pair-delta tables of :mod:`repro.kernels` — the fused
(z₁+z₂)-column neighbor table and the 4×4×8 difference-row lookup price a
swap with two gathers and no per-shell Python loop, and the ``*_many``
variants step whole batched-walker teams per call.
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.pair import PairHamiltonian
from repro.lattice.structures import Lattice, bcc
from repro.lattice.configuration import NBMOTAW, SpeciesSet

__all__ = [
    "EPIHamiltonian",
    "NbMoTaWHamiltonian",
    "NBMOTAW_EPI_SHELL1",
    "NBMOTAW_EPI_SHELL2",
    "KB_EV_PER_K",
]

#: Boltzmann constant in eV/K.
KB_EV_PER_K = 8.617333262e-5

# Species order: Nb, Mo, Ta, W (matches repro.lattice.NBMOTAW).
# First BCC shell (z = 8).  Negative off-diagonal = unlike pair favored
# (ordering); values in eV per bond.
NBMOTAW_EPI_SHELL1 = np.array(
    [
        #  Nb       Mo       Ta       W
        [0.000, -0.045, +0.005, -0.040],  # Nb
        [-0.045, 0.000, -0.120, +0.010],  # Mo
        [+0.005, -0.120, 0.000, -0.060],  # Ta
        [-0.040, +0.010, -0.060, 0.000],  # W
    ]
)

# Second BCC shell (z = 6).  Positive unlike-pair values on the second shell
# reinforce B2 order (second neighbors share a sublattice).
NBMOTAW_EPI_SHELL2 = np.array(
    [
        #  Nb       Mo       Ta       W
        [0.000, +0.010, -0.002, +0.008],  # Nb
        [+0.010, 0.000, +0.030, -0.004],  # Mo
        [-0.002, +0.030, 0.000, +0.015],  # Ta
        [+0.008, -0.004, +0.015, 0.000],  # W
    ]
)


class EPIHamiltonian(PairHamiltonian):
    """Cluster-expansion pair term for an arbitrary alloy.

    A thin wrapper over :class:`PairHamiltonian` that carries the species
    names, the temperature unit convention, and per-species reference (point)
    energies.

    Parameters
    ----------
    lattice : Lattice
    species : SpeciesSet
        Chemical identities of the species indices.
    shell_matrices : sequence of arrays
        EPI matrix per shell (eV/bond).
    point_energies : array_like, optional
        Per-species on-site term (eV/atom); physically a chemical reference
        shift — it changes absolute energies but not fixed-composition
        thermodynamics, and is exposed mostly for completeness.
    """

    def __init__(self, lattice: Lattice, species: SpeciesSet, shell_matrices,
                 point_energies=None, name: str = "epi"):
        self.species = species
        super().__init__(lattice, shell_matrices, field=point_energies, name=name)
        if self.n_species != species.n_species:
            raise ValueError(
                f"EPI matrices are {self.n_species}x{self.n_species} but "
                f"species set has {species.n_species} entries"
            )

    def beta_from_kelvin(self, temperature_k: float) -> float:
        """Inverse temperature 1/(k_B·T) in 1/eV from T in kelvin."""
        if temperature_k <= 0:
            raise ValueError(f"temperature must be positive, got {temperature_k}")
        return 1.0 / (KB_EV_PER_K * temperature_k)

    def kelvin_from_beta(self, beta: float) -> float:
        """Temperature in kelvin from inverse temperature in 1/eV."""
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        return 1.0 / (KB_EV_PER_K * beta)


class NbMoTaWHamiltonian(EPIHamiltonian):
    """The paper's NbMoTaW-class refractory HEA on a BCC lattice.

    Parameters
    ----------
    lattice : Lattice, optional
        A BCC lattice (built with :func:`repro.lattice.bcc`); defaults to
        ``bcc(4)`` (128 sites).
    n_shells : int
        Use 1 or 2 EPI shells (2 = default, matches the ordering physics).
    scale : float
        Uniform multiplier on the EPI matrices — the test suite and the
        ablation benchmarks use it to move the transition temperature.
    """

    def __init__(self, lattice: Lattice | None = None, n_shells: int = 2, scale: float = 1.0):
        if lattice is None:
            lattice = bcc(4)
        if lattice.name != "bcc":
            raise ValueError(
                f"NbMoTaW is a BCC alloy; got a {lattice.name!r} lattice "
                "(use repro.lattice.bcc)"
            )
        if n_shells not in (1, 2):
            raise ValueError(f"n_shells must be 1 or 2, got {n_shells}")
        mats = [scale * NBMOTAW_EPI_SHELL1, scale * NBMOTAW_EPI_SHELL2][:n_shells]
        super().__init__(lattice, NBMOTAW, mats, name="NbMoTaW")
        self.scale = float(scale)
