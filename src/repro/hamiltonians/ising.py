"""Ising model as a two-species pair Hamiltonian.

Convention::

    E = -J · sum_<ij> s_i s_j  -  h · sum_i s_i,     s ∈ {-1, +1}

with species index 0 ↔ spin −1 and 1 ↔ spin +1.  On the 2D square lattice
this model has Onsager's exact critical temperature and an exactly
enumerable density of states (see :mod:`repro.dos.exact_ising`), which makes
it the correctness anchor for every sampler in the repository (experiment
E1).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.pair import PairHamiltonian
from repro.lattice.structures import Lattice

__all__ = ["IsingHamiltonian"]

_SPINS = np.array([-1.0, 1.0])


class IsingHamiltonian(PairHamiltonian):
    """Nearest-neighbor Ising model on any lattice.

    Parameters
    ----------
    lattice : Lattice
    coupling : float
        Exchange constant J (>0 ferromagnetic).
    external_field : float
        Field h coupling to total magnetization.
    """

    def __init__(self, lattice: Lattice, coupling: float = 1.0, external_field: float = 0.0):
        self.coupling = float(coupling)
        self.external_field = float(external_field)
        interaction = -self.coupling * np.outer(_SPINS, _SPINS)
        field = None
        if self.external_field != 0.0:
            field = -self.external_field * _SPINS
        super().__init__(lattice, [interaction], field=field, name="ising")

    def magnetization(self, config: np.ndarray) -> float:
        """Total magnetization sum_i s_i."""
        return float(_SPINS[np.asarray(config)].sum())

    def magnetizations(self, configs: np.ndarray) -> np.ndarray:
        """Per-row total magnetization of a config batch, ``(B, n) -> (B,)``."""
        return _SPINS[np.atleast_2d(np.asarray(configs))].sum(axis=1)

    @staticmethod
    def spins(config: np.ndarray) -> np.ndarray:
        """Map species indices {0,1} to spins {-1,+1}."""
        return _SPINS[np.asarray(config)]

    def ground_state_energy(self) -> float:
        """Exact ground-state energy (all spins aligned with the field)."""
        n_bonds = self.bond_count(0)
        e_align = -self.coupling * n_bonds - abs(self.external_field) * self.n_sites
        if self.external_field == 0.0 and self.coupling < 0:
            # Antiferromagnet: on bipartite lattices the Néel state achieves
            # +J per bond being impossible... keep the rigorous pair bound.
            return self.energy_bounds()[0]
        return float(e_align)

    def energy_levels(self) -> np.ndarray:
        """All possible energy values at h = 0.

        The bond sum ``sum s_i s_j`` changes in steps of 2 (single flip on a
        square lattice changes it by {−4, ..., +4} in steps of 2), so the
        spectrum at h = 0 is ``-J·(n_bonds − 2k)`` for k = 0..n_bonds.
        """
        if self.external_field != 0.0:
            raise NotImplementedError("energy_levels is only defined at h = 0")
        n_bonds = self.bond_count(0)
        return -self.coupling * (n_bonds - 2.0 * np.arange(n_bonds + 1))
