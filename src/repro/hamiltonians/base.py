"""Abstract Hamiltonian interface.

Samplers and proposals are written against this interface only, so every
model (Ising validation, Potts, HEA effective pair interactions) plugs into
every sampler unchanged.  The contract that matters most for correctness is
the *incremental-energy consistency* invariant, property-tested in
``tests/test_hamiltonians.py``::

    energy(after_move) == energy(before) + delta_energy_<move>(before, ...)

to floating-point roundoff, for every move type.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Hamiltonian"]


class Hamiltonian(abc.ABC):
    """Energy model over fixed-lattice multi-species configurations.

    Concrete classes must set :attr:`n_sites` and :attr:`n_species` and
    implement :meth:`energy`, :meth:`delta_energy_swap`, and
    :meth:`delta_energy_flip`.  Batched/utility methods have generic (slower)
    default implementations that subclasses may override.
    """

    #: Number of lattice sites the model is defined over.
    n_sites: int
    #: Number of chemical species / spin states.
    n_species: int

    # ------------------------------------------------------------- required

    @abc.abstractmethod
    def energy(self, config: np.ndarray) -> float:
        """Total energy of ``config`` (shape ``(n_sites,)``, int species)."""

    @abc.abstractmethod
    def delta_energy_swap(self, config: np.ndarray, i: int, j: int) -> float:
        """Energy change of swapping the species at sites ``i`` and ``j``.

        Must cost O(z), not O(N).  Swapping equal species returns exactly 0.
        """

    @abc.abstractmethod
    def delta_energy_flip(self, config: np.ndarray, site: int, new_species: int) -> float:
        """Energy change of setting ``config[site] = new_species``.

        Must cost O(z).  Flipping to the current species returns exactly 0.
        Note: flips change composition; canonical (fixed-composition) samplers
        use swaps only.
        """

    # -------------------------------------------------------------- batched

    def energies(self, configs: np.ndarray) -> np.ndarray:
        """Energies of a batch of configurations, shape ``(B, n_sites) -> (B,)``.

        Default: loop over :meth:`energy`; pair models override with a fully
        vectorized kernel (deep-learning proposals evaluate whole batches).
        """
        configs = np.atleast_2d(configs)
        return np.array([self.energy(c) for c in configs], dtype=np.float64)

    def delta_energy_swap_batch(self, config: np.ndarray, ii, jj) -> np.ndarray:
        """ΔE for many *independent alternative* swaps on the same config.

        The swaps are hypothetical alternatives (e.g. multiple-try MC), not a
        sequence: each ΔE is relative to the same starting ``config``.
        """
        ii = np.asarray(ii)
        jj = np.asarray(jj)
        return np.array(
            [self.delta_energy_swap(config, int(i), int(j)) for i, j in zip(ii, jj)],
            dtype=np.float64,
        )

    def delta_energy_flip_batch(self, config: np.ndarray, sites, new_species) -> np.ndarray:
        """ΔE for many *independent alternative* flips on the same config."""
        sites = np.asarray(sites)
        new_species = np.asarray(new_species)
        return np.array(
            [
                self.delta_energy_flip(config, int(s), int(v))
                for s, v in zip(sites, new_species)
            ],
            dtype=np.float64,
        )

    def delta_energy_swap_many(self, configs: np.ndarray, ii, jj) -> np.ndarray:
        """ΔE of one swap per configuration row, ``(B, n_sites) -> (B,)``.

        Unlike :meth:`delta_energy_swap_batch`, each row of ``configs`` is an
        *independent* configuration (a walker in batched multi-walker WL) and
        the move ``(ii[b], jj[b])`` is priced against row ``b`` only.
        """
        configs = np.atleast_2d(configs)
        ii = np.asarray(ii)
        jj = np.asarray(jj)
        return np.array(
            [
                self.delta_energy_swap(c, int(i), int(j))
                for c, i, j in zip(configs, ii, jj)
            ],
            dtype=np.float64,
        )

    def delta_energy_flip_many(self, configs: np.ndarray, sites, new_species) -> np.ndarray:
        """ΔE of one flip per configuration row, ``(B, n_sites) -> (B,)``."""
        configs = np.atleast_2d(configs)
        sites = np.asarray(sites)
        new_species = np.asarray(new_species)
        return np.array(
            [
                self.delta_energy_flip(c, int(s), int(v))
                for c, s, v in zip(configs, sites, new_species)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------- metadata

    def energy_bounds(self) -> tuple[float, float]:
        """Rigorous (possibly loose) bounds ``(E_lo, E_hi)`` on the spectrum.

        Used to size Wang-Landau histograms and REWL energy windows.  The
        default raises; pair models provide matrix-derived bounds.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide energy bounds; "
            "pass an explicit energy range to the sampler"
        )

    def profiled(self, profiler) -> "Hamiltonian":
        """Profiled view of this model: ΔE/energy calls are section-timed.

        Returns a delegating wrapper (:class:`repro.obs.profile.
        ProfiledHamiltonian`), never mutates ``self`` — walkers sharing one
        Hamiltonian each get an independent view, and profiling is zero-RNG
        so results stay bit-identical.
        """
        from repro.obs.profile import ProfiledHamiltonian

        return ProfiledHamiltonian(self, profiler)

    def validate_config(self, config: np.ndarray) -> np.ndarray:
        """Shape/range-check a configuration (returns it unchanged)."""
        config = np.asarray(config)
        if config.shape != (self.n_sites,):
            raise ValueError(
                f"configuration must have shape ({self.n_sites},), got {config.shape}"
            )
        if config.size and (int(config.min()) < 0 or int(config.max()) >= self.n_species):
            raise ValueError(f"species indices must lie in [0, {self.n_species})")
        return config

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_sites={self.n_sites}, n_species={self.n_species})"
