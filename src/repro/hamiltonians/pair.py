"""Generic per-shell pair-interaction Hamiltonian.

Energy convention::

    E(c) = sum_s sum_{<i,j> in shell s} V_s[c_i, c_j]  +  sum_i f[c_i]

where each undirected bond ``<i,j>`` is counted once, ``V_s`` is the
symmetric interaction matrix of shell ``s`` and ``f`` an optional on-site
(per-species) field.  Ising, Potts, and the HEA effective-pair-interaction
models are all thin wrappers over this class.

Performance notes (per the HPC guides: vectorize, avoid copies):

- :meth:`energy` gathers ``V_s[c[i], c[j]]`` over precomputed pair index
  arrays — one fancy-indexing pass per shell, no Python loops.
- :meth:`delta_energy_swap` touches only the ~2z neighbors of the swapped
  sites, using the closed form

  ``ΔE = Σ_n (V[b,c_n] − V[a,c_n]) + Σ_m (V[a,c_m] − V[b,c_m])
          − [i~j]·(V[a,a] + V[b,b] − 2V[a,b])``

  where ``a = c_i``, ``b = c_j``, n ranges over N(i), m over N(j), and the
  bracket corrects for the i–j bond when the sites are neighbors.
- :meth:`energy_batch` evaluates whole configuration batches in one gather
  (used by the deep-learning proposals, which re-score global updates).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.lattice.structures import Lattice, NeighborShell

__all__ = ["PairHamiltonian"]


class PairHamiltonian(Hamiltonian):
    """Pair-interaction model on a lattice.

    Parameters
    ----------
    lattice : Lattice
        The underlying periodic lattice.
    shell_matrices : sequence of (n_species, n_species) arrays
        One symmetric interaction matrix per coordination shell, innermost
        shell first.  Asymmetric input raises.
    field : array_like of shape (n_species,), optional
        On-site energy per species.
    name : str
        Label used in reports.
    """

    def __init__(self, lattice: Lattice, shell_matrices, field=None, name: str = "pair"):
        self.lattice = lattice
        self.name = name
        mats = [np.asarray(m, dtype=np.float64) for m in shell_matrices]
        if not mats:
            raise ValueError("at least one shell interaction matrix is required")
        n_species = mats[0].shape[0]
        for k, m in enumerate(mats):
            if m.shape != (n_species, n_species):
                raise ValueError(
                    f"shell matrix {k} has shape {m.shape}, expected "
                    f"({n_species}, {n_species})"
                )
            if not np.allclose(m, m.T):
                raise ValueError(f"shell matrix {k} must be symmetric")
        self.shell_matrices = tuple(mats)
        self.n_species = n_species
        self.n_sites = lattice.n_sites
        self.field = None if field is None else np.asarray(field, dtype=np.float64)
        if self.field is not None and self.field.shape != (n_species,):
            raise ValueError(
                f"field must have shape ({n_species},), got {self.field.shape}"
            )

        shells: tuple[NeighborShell, ...] = lattice.neighbor_shells(len(mats))
        self.shells = shells
        # Pair arrays (each undirected bond once) for the full-energy gather.
        self._pair_i = []
        self._pair_j = []
        for shell in shells:
            pairs = shell.pairs()
            self._pair_i.append(np.ascontiguousarray(pairs[:, 0]))
            self._pair_j.append(np.ascontiguousarray(pairs[:, 1]))
        # Neighbor tables for the O(z) incremental updates.
        self._tables = [shell.table for shell in shells]
        # Per-shell "same-bond" correction term V[a,a] + V[b,b] - 2 V[a,b].
        self._bond_corr = []
        for m in mats:
            diag = np.diag(m)
            self._bond_corr.append(diag[:, None] + diag[None, :] - 2.0 * m)

        # Fused incremental-update structures: all shells concatenated into
        # one neighbor table, with species keys offset by shell so a single
        # gather + one row lookup prices a move (profiling showed the
        # per-shell loop dominated the MC step on this interpreter).
        self._cat_table = np.concatenate(self._tables, axis=1)
        self._shell_offsets = np.concatenate(
            [np.full(t.shape[1], s * n_species, dtype=np.int64)
             for s, t in enumerate(self._tables)]
        )
        self._shell_of_col = np.concatenate(
            [np.full(t.shape[1], s, dtype=np.int64) for s, t in enumerate(self._tables)]
        )
        # _diff_rows[a, b, c + s*n_species] = V_s[b, c] - V_s[a, c]
        self._diff_rows = np.empty((n_species, n_species, n_species * len(mats)))
        for a in range(n_species):
            for b in range(n_species):
                self._diff_rows[a, b] = np.concatenate(
                    [m[b] - m[a] for m in mats]
                )

    # ---------------------------------------------------------------- energy

    def energy(self, config: np.ndarray) -> float:
        config = np.asarray(config)
        total = 0.0
        for m, pi, pj in zip(self.shell_matrices, self._pair_i, self._pair_j):
            total += m[config[pi], config[pj]].sum()
        if self.field is not None:
            total += self.field[config].sum()
        return float(total)

    def energy_batch(self, configs: np.ndarray) -> np.ndarray:
        configs = np.atleast_2d(np.asarray(configs))
        total = np.zeros(configs.shape[0], dtype=np.float64)
        for m, pi, pj in zip(self.shell_matrices, self._pair_i, self._pair_j):
            total += m[configs[:, pi], configs[:, pj]].sum(axis=1)
        if self.field is not None:
            total += self.field[configs].sum(axis=1)
        return total

    # ----------------------------------------------------------- incremental

    def delta_energy_swap(self, config: np.ndarray, i: int, j: int) -> float:
        a = int(config[i])
        b = int(config[j])
        if a == b or i == j:
            return 0.0
        row = self._diff_rows[a, b]
        nbr_i = self._cat_table[i]
        keys_i = config[nbr_i] + self._shell_offsets
        keys_j = config[self._cat_table[j]] + self._shell_offsets
        delta = row[keys_i].sum() - row[keys_j].sum()
        # The i-j bond (when present in a shell) was double-handled above.
        hits = nbr_i == j
        if hits.any():
            for col in np.nonzero(hits)[0]:
                delta -= self._bond_corr[self._shell_of_col[col]][a, b]
        return float(delta)

    def delta_energy_flip(self, config: np.ndarray, site: int, new_species: int) -> float:
        old = int(config[site])
        new = int(new_species)
        if old == new:
            return 0.0
        keys = config[self._cat_table[site]] + self._shell_offsets
        delta = self._diff_rows[old, new][keys].sum()
        if self.field is not None:
            delta += self.field[new] - self.field[old]
        return float(delta)

    def delta_energy_swap_batch(self, config: np.ndarray, ii, jj) -> np.ndarray:
        """Vectorized ΔE for a batch of independent alternative swaps."""
        config = np.asarray(config)
        ii = np.asarray(ii, dtype=np.int64)
        jj = np.asarray(jj, dtype=np.int64)
        aa = config[ii].astype(np.int64)
        bb = config[jj].astype(np.int64)
        delta = np.zeros(ii.shape[0], dtype=np.float64)
        for m, table, corr in zip(self.shell_matrices, self._tables, self._bond_corr):
            ni = config[table[ii]]  # (B, z)
            nj = config[table[jj]]
            delta += (m[bb[:, None], ni] - m[aa[:, None], ni]).sum(axis=1)
            delta += (m[aa[:, None], nj] - m[bb[:, None], nj]).sum(axis=1)
            bonds = (table[ii] == jj[:, None]).sum(axis=1)
            delta -= bonds * corr[aa, bb]
        same = (aa == bb) | (ii == jj)
        delta[same] = 0.0
        return delta

    # --------------------------------------------------------------- bounds

    def energy_bounds(self) -> tuple[float, float]:
        """Matrix-derived rigorous bounds on the energy spectrum."""
        lo = 0.0
        hi = 0.0
        for m, pi in zip(self.shell_matrices, self._pair_i):
            n_pairs = pi.shape[0]
            lo += n_pairs * float(m.min())
            hi += n_pairs * float(m.max())
        if self.field is not None:
            lo += self.n_sites * float(self.field.min())
            hi += self.n_sites * float(self.field.max())
        return lo, hi

    # ---------------------------------------------------------------- extra

    @property
    def n_shells(self) -> int:
        return len(self.shell_matrices)

    def bond_count(self, shell: int = 0) -> int:
        """Number of undirected bonds in the given shell."""
        return self._pair_i[shell].shape[0]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, n_sites={self.n_sites}, "
            f"n_species={self.n_species}, n_shells={self.n_shells})"
        )
