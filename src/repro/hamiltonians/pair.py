"""Generic per-shell pair-interaction Hamiltonian.

Energy convention::

    E(c) = sum_s sum_{<i,j> in shell s} V_s[c_i, c_j]  +  sum_i f[c_i]

where each undirected bond ``<i,j>`` is counted once, ``V_s`` is the
symmetric interaction matrix of shell ``s`` and ``f`` an optional on-site
(per-species) field.  Ising, Potts, and the HEA effective-pair-interaction
models are all thin wrappers over this class.

All energy evaluation delegates to :mod:`repro.kernels`: the constructor
builds a :class:`~repro.kernels.tables.PairTables` (fused neighbor tables,
difference-row ΔE lookups, bond-correction stacks) and every method below is
a thin call into :mod:`repro.kernels.ops`.  The scalar ΔE path there is
operation-for-operation the pre-kernel implementation, so single-walker
trajectories are bit-identical; the ``*_alternatives`` / ``*_many`` kernels
are the fully vectorized batched shapes (see the kernels module docs).
"""

from __future__ import annotations

import numpy as np

from repro.hamiltonians.base import Hamiltonian
from repro.kernels import ops
from repro.kernels.tables import PairTables
from repro.lattice.structures import Lattice, NeighborShell

__all__ = ["PairHamiltonian"]


class PairHamiltonian(Hamiltonian):
    """Pair-interaction model on a lattice.

    Parameters
    ----------
    lattice : Lattice
        The underlying periodic lattice.
    shell_matrices : sequence of (n_species, n_species) arrays
        One symmetric interaction matrix per coordination shell, innermost
        shell first.  Asymmetric input raises.
    field : array_like of shape (n_species,), optional
        On-site energy per species.
    name : str
        Label used in reports.
    """

    def __init__(self, lattice: Lattice, shell_matrices, field=None, name: str = "pair"):
        self.lattice = lattice
        self.name = name
        mats = [np.asarray(m, dtype=np.float64) for m in shell_matrices]
        if not mats:
            raise ValueError("at least one shell interaction matrix is required")
        n_species = mats[0].shape[0]
        for k, m in enumerate(mats):
            if m.shape != (n_species, n_species):
                raise ValueError(
                    f"shell matrix {k} has shape {m.shape}, expected "
                    f"({n_species}, {n_species})"
                )
            if not np.allclose(m, m.T):
                raise ValueError(f"shell matrix {k} must be symmetric")
        self.shell_matrices = tuple(mats)
        self.n_species = n_species
        self.n_sites = lattice.n_sites
        self.field = None if field is None else np.asarray(field, dtype=np.float64)
        if self.field is not None and self.field.shape != (n_species,):
            raise ValueError(
                f"field must have shape ({n_species},), got {self.field.shape}"
            )

        shells: tuple[NeighborShell, ...] = lattice.neighbor_shells(len(mats))
        self.shells = shells
        #: Precomputed kernel tables (see :mod:`repro.kernels.tables`).
        self.tables = PairTables(shells, self.shell_matrices, self.field)

    # ---------------------------------------------------------------- energy

    def energy(self, config: np.ndarray) -> float:
        return ops.energy(self.tables, config)

    def energies(self, configs: np.ndarray) -> np.ndarray:
        return ops.energies(self.tables, configs)

    # ----------------------------------------------------------- incremental

    def delta_energy_swap(self, config: np.ndarray, i: int, j: int) -> float:
        return ops.delta_swap(self.tables, config, i, j)

    def delta_energy_flip(self, config: np.ndarray, site: int, new_species: int) -> float:
        return ops.delta_flip(self.tables, config, site, new_species)

    def delta_energy_swap_batch(self, config: np.ndarray, ii, jj) -> np.ndarray:
        """Vectorized ΔE for a batch of independent alternative swaps."""
        return ops.delta_swap_alternatives(self.tables, config, ii, jj)

    def delta_energy_flip_batch(self, config: np.ndarray, sites, new_species) -> np.ndarray:
        """Vectorized ΔE for a batch of independent alternative flips."""
        return ops.delta_flip_alternatives(self.tables, config, sites, new_species)

    def delta_energy_swap_many(self, configs: np.ndarray, ii, jj) -> np.ndarray:
        """Vectorized per-walker swap ΔE (batched multi-walker stepping)."""
        return ops.delta_swap_many(self.tables, configs, ii, jj)

    def delta_energy_flip_many(self, configs: np.ndarray, sites, new_species) -> np.ndarray:
        """Vectorized per-walker flip ΔE (batched multi-walker stepping)."""
        return ops.delta_flip_many(self.tables, configs, sites, new_species)

    # --------------------------------------------------------------- bounds

    def energy_bounds(self) -> tuple[float, float]:
        """Matrix-derived rigorous bounds on the energy spectrum."""
        lo = 0.0
        hi = 0.0
        for m, pi in zip(self.shell_matrices, self.tables.pair_i):
            n_pairs = pi.shape[0]
            lo += n_pairs * float(m.min())
            hi += n_pairs * float(m.max())
        if self.field is not None:
            lo += self.n_sites * float(self.field.min())
            hi += self.n_sites * float(self.field.max())
        return lo, hi

    # ---------------------------------------------------------------- extra

    @property
    def n_shells(self) -> int:
        return len(self.shell_matrices)

    def bond_count(self, shell: int = 0) -> int:
        """Number of undirected bonds in the given shell."""
        return self.tables.pair_i[shell].shape[0]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, n_sites={self.n_sites}, "
            f"n_species={self.n_species}, n_shells={self.n_shells})"
        )
