"""Supervision overhead: retry/timeout plumbing must not tax fault-free runs.

The fault-tolerance contract (DESIGN.md §9) is that a supervised executor
with no injected faults costs a few percent at most over the bare map on a
REWL-advance-sized workload — the supervision layer only adds a retry loop
around each task and the fault wrapper is a passthrough when no task faults
are configured.  A chaos run (crash+hang injection with retries) is
benchmarked alongside to show what recovery actually costs, as is the
crash-consistent checkpoint write/read cycle.

Run: ``pytest benchmarks/bench_fault_overhead.py --benchmark-only``.
"""

import numpy as np

from repro.faults import FaultConfig, FaultInjector
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor, save_checkpoint
from repro.parallel.checkpoint import load_checkpoint
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid

_STEPS = 2_000  # WL steps per task, REWL advance-phase sized
_TASKS = 8


def _make_walkers(make_ising_wl, n=_TASKS):
    # never converges inside the bench
    return [make_ising_wl(seed=seed, ln_f_final=1e-12) for seed in range(n)]


def _advance(wl):
    wl.run(max_steps=wl.n_steps + _STEPS)
    return wl.n_steps


def bench_advance_bare_loop(benchmark, make_ising_wl, throughput):
    """Baseline: the advance workload with no executor at all."""
    walkers = _make_walkers(make_ising_wl)
    throughput(_TASKS * _STEPS)

    def block():
        return [_advance(wl) for wl in walkers]

    assert min(benchmark(block)) >= _STEPS


def bench_advance_supervised_no_faults(benchmark, make_ising_wl, throughput):
    """Supervised map, retry budget armed, nothing injected — the overhead
    target: same work as the bare loop plus only the supervision plumbing."""
    walkers = _make_walkers(make_ising_wl)
    throughput(_TASKS * _STEPS)
    ex = SerialExecutor(max_retries=3, faults=None)
    assert ex.faults is None or not ex.faults.cfg.any_task_faults

    def block():
        return ex.map(_advance, walkers)

    assert min(benchmark(block)) >= _STEPS


def bench_map_under_chaos(benchmark, ising_4x4):
    """Crash+hang injection with retries: the price of actually recovering.

    Uses a cheap task so the benchmark measures the retry machinery, not
    the (re-run) WL steps.
    """
    inj = FaultInjector(FaultConfig(crash=0.2, hang=0.05, hang_s=0.0, seed=3))
    ex = SerialExecutor(faults=inj, retry_backoff=0.0)
    items = list(range(64))

    def block():
        return ex.map(lambda x: x * x, items)

    assert benchmark(block) == [x * x for x in items]


def bench_checkpoint_save_load_cycle(benchmark, ising_4x4, tmp_path_factory):
    """Atomic write (tmp+fsync+rename, sha256) plus verified read-back."""
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    driver = REWLDriver(
        hamiltonian=ising_4x4, proposal_factory=lambda: FlipProposal(),
        grid=grid, initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=500, ln_f_final=1e-12, seed=0),
    )
    driver.run(max_rounds=1)
    path = tmp_path_factory.mktemp("ckpt") / "bench.ckpt"

    def cycle():
        save_checkpoint(driver, path)
        load_checkpoint(driver, path)
        return driver.rounds

    assert benchmark(cycle) == 1
