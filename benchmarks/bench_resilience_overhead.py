"""Resilience overhead: guard rails must not tax a healthy campaign.

The self-healing contract (DESIGN.md §14) is that a supervised REWL run with
no guard trips costs at most ~2% over the unsupervised driver on an
advance-dominated workload (``bench_e9_throughput`` style): per round the
supervisor only runs finiteness/shape checks over each window's ln g and
histogram plus a pickle byte-copy snapshot, both O(windows x bins) against
O(windows x walkers x exchange_interval) WL steps.  Gate the pair with
``python -m repro obs bench-compare OLD NEW``.

The isolated ``guard_round`` / ``snapshot`` benches price the two supervisor
primitives on their own, and the chaos bench shows what a degraded round
(persistent nan poisoning -> rollback -> quarantine) actually costs.

Run: ``pytest benchmarks/bench_resilience_overhead.py --benchmark-only``.
"""

import numpy as np

from repro.faults import FaultConfig, FaultInjector
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor
from repro.proposals import FlipProposal
from repro.resilience import GuardPolicy, ResilienceConfig
from repro.sampling import EnergyGrid

_ROUNDS = 2  # exchange rounds per measured block
# Advance-dominated sizing: the guard sweep + snapshot cost ~1 ms/round
# regardless of exchange_interval, so the contract is stated against a
# production-shaped round (thousands of WL steps per walker), not a toy one.
_CFG = dict(n_windows=2, walkers_per_window=2, overlap=0.6,
            exchange_interval=2_000, ln_f_final=1e-12, seed=0)


def _driver(ising_4x4, resilience=None, executor=None, **overrides):
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    cfg = dict(_CFG, **overrides)
    return REWLDriver(
        hamiltonian=ising_4x4, proposal_factory=lambda: FlipProposal(),
        grid=grid, initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(**cfg), executor=executor, resilience=resilience,
    )


def _steps_per_block():
    return _CFG["n_windows"] * _CFG["walkers_per_window"] * \
        _CFG["exchange_interval"] * _ROUNDS


def _bench_rounds(benchmark, driver):
    """Fixed-shape measurement for the guarded/unguarded pair.

    Explicit warmup rounds: the first run() call pays one-off costs (page
    faults, numpy dispatch caches) that would otherwise land asymmetrically
    on whichever bench the runner happens to execute first and swamp a
    percent-level comparison.
    """

    def block():
        driver.run(max_rounds=driver.rounds + _ROUNDS)
        return driver.rounds

    assert benchmark.pedantic(block, rounds=8, warmup_rounds=2) >= _ROUNDS


def bench_rewl_rounds_unguarded(benchmark, ising_4x4, throughput):
    """Baseline: the REWL round loop with no supervisor attached."""
    driver = _driver(ising_4x4)
    assert driver.supervisor is None
    throughput(_steps_per_block())
    _bench_rounds(benchmark, driver)


def bench_rewl_rounds_guarded_no_trips(benchmark, ising_4x4, throughput):
    """Supervised rounds, guards armed, nothing trips — the <=2% target.

    Same work as the unguarded bench plus only the per-round guard checks
    and the rollback snapshot.
    """
    driver = _driver(
        ising_4x4,
        resilience=ResilienceConfig(guards=GuardPolicy(mode="quarantine")),
    )
    throughput(_steps_per_block())
    _bench_rounds(benchmark, driver)
    assert not driver.supervisor.degraded


def bench_guard_round_checks(benchmark, ising_4x4):
    """One full guard sweep (ln g / histogram / ln f checks, all windows)."""
    driver = _driver(
        ising_4x4, resilience=ResilienceConfig(guards=GuardPolicy())
    )
    driver.run(max_rounds=1)

    def block():
        driver.supervisor.guard_round(driver)
        return driver.supervisor.quarantined

    assert benchmark(block) == []


def bench_snapshot_byte_copy(benchmark, ising_4x4):
    """The pickle byte-copy of every window team backing rollback."""
    driver = _driver(
        ising_4x4, resilience=ResilienceConfig(guards=GuardPolicy())
    )
    driver.run(max_rounds=1)

    def block():
        driver.supervisor.snapshot(driver)
        return len(driver.walkers)  # one team per window

    assert benchmark(block) == _CFG["n_windows"]


def bench_rewl_under_nan_chaos(benchmark, ising_4x4):
    """Degraded campaign end-to-end: persistent nan poisoning of one window
    -> rollback budget burns -> quarantine -> partial harvest.

    Prices the recovery machinery (guard trips, snapshot restores, exchange
    re-pairing), not steady-state overhead; a fresh driver per round since a
    quarantine is permanent for the life of the run.
    """
    injector = FaultInjector(FaultConfig(nan=1.0, window=1, seed=3))
    seeds = iter(range(10_000))

    def block():
        driver = _driver(
            ising_4x4,
            resilience=ResilienceConfig(
                guards=GuardPolicy(mode="quarantine", max_rollbacks=1)),
            executor=SerialExecutor(faults=injector, retry_backoff=0.0),
            seed=next(seeds), exchange_interval=100,
        )
        result = driver.run(max_rounds=8)
        return result.degraded

    assert benchmark(block) is True
