"""E4 bench (Fig 4): Warren-Cowley SRO computation and reweighting."""

import numpy as np

from repro.analysis import warren_cowley
from repro.dos import reweight_observable
from repro.lattice import bcc, equiatomic_counts, random_configuration


def bench_warren_cowley_large(benchmark):
    """SRO matrix on a 2,000-site BCC cell (per-measurement cost in Fig 4)."""
    lat = bcc(10)
    cfg = random_configuration(lat.n_sites, equiatomic_counts(lat.n_sites, 4), rng=0)
    lat.neighbor_shells(1)  # build tables outside the timed region

    alpha = benchmark(warren_cowley, lat, cfg, 4)
    assert alpha.shape == (4, 4)
    assert np.nanmax(np.abs(alpha)) < 0.2  # random alloy stays near zero


def bench_reweight_sro_curve(benchmark):
    """Reweighting microcanonical SRO(E) to 100 temperatures."""
    n_bins = 500
    energies = np.linspace(-1.0, 1.0, n_bins)
    ln_g = 3_000.0 * (1.0 - energies**2)
    micro = -0.5 * np.exp(-((energies + 0.8) ** 2) / 0.05)  # ordered at low E
    temps = np.linspace(0.05, 2.0, 100)

    curve = benchmark(reweight_observable, energies, ln_g, micro, temps)
    assert curve.shape == (100,)
    # Ordering must fade with temperature.
    assert curve[0] < curve[-1] <= 0.0 + 1e-12
