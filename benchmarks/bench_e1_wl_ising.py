"""E1 bench (Fig 1): Wang-Landau kernel on the exact-checkable Ising model.

Benchmarks the WL step loop and a full small-scale convergence; asserts the
converged ln g still matches enumeration (the benchmark doubles as a
regression test of the figure's content).
"""

import numpy as np

from repro.dos import exact_ising_dos_bruteforce
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, WangLandauSampler


def _make_wl(ising_4x4, seed=0, ln_f_final=1e-4):
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    return WangLandauSampler(
        ising_4x4, FlipProposal(), grid, np.zeros(16, dtype=np.int8),
        rng=seed, ln_f_final=ln_f_final,
    )


def bench_wl_steps(benchmark, ising_4x4):
    """Raw WL step throughput (the inner loop of Fig 1)."""
    wl = _make_wl(ising_4x4)

    def run_block():
        for _ in range(2_000):
            wl.step()
        return wl.n_steps

    total = benchmark(run_block)
    assert total >= 2_000


def bench_wl_convergence_small(benchmark, ising_4x4):
    """Full WL convergence at relaxed ln f (regenerates Fig 1a's data)."""
    levels, degens = exact_ising_dos_bruteforce(4)
    exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}

    def converge():
        wl = _make_wl(ising_4x4, seed=1, ln_f_final=5e-3)
        return wl.run(max_steps=3_000_000)

    res = benchmark.pedantic(converge, iterations=1, rounds=1)
    assert res.converged
    centers = res.grid.centers
    mg = res.masked_ln_g()
    errs = [
        abs((mg[k] - mg[res.visited][0]) - (exact[float(centers[k])] - exact[-32.0]))
        for k in np.nonzero(res.visited)[0]
        if float(centers[k]) in exact
    ]
    assert max(errs) < 1.0
