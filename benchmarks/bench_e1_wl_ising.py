"""E1 bench (Fig 1): Wang-Landau kernel on the exact-checkable Ising model.

Benchmarks the WL step loop and a full small-scale convergence; asserts the
converged ln g still matches enumeration (the benchmark doubles as a
regression test of the figure's content).
"""

import numpy as np

from repro.dos import exact_ising_dos_bruteforce

_BLOCK = 2_000  # WL steps per benchmark round


def bench_wl_steps(benchmark, make_ising_wl, throughput):
    """Raw WL step throughput (the inner loop of Fig 1)."""
    wl = make_ising_wl()
    throughput(_BLOCK)

    def run_block():
        for _ in range(_BLOCK):
            wl.step()
        return wl.n_steps

    total = benchmark(run_block)
    assert total >= _BLOCK


def bench_wl_convergence_small(benchmark, make_ising_wl):
    """Full WL convergence at relaxed ln f (regenerates Fig 1a's data)."""
    levels, degens = exact_ising_dos_bruteforce(4)
    exact = {float(e): float(np.log(d)) for e, d in zip(levels, degens)}

    def converge():
        wl = make_ising_wl(seed=1, ln_f_final=5e-3)
        return wl.run(max_steps=3_000_000)

    res = benchmark.pedantic(converge, iterations=1, rounds=1)
    assert res.converged
    centers = res.grid.centers
    mg = res.masked_ln_g()
    errs = [
        abs((mg[k] - mg[res.visited][0]) - (exact[float(centers[k])] - exact[-32.0]))
        for k in np.nonzero(res.visited)[0]
        if float(centers[k]) in exact
    ]
    assert max(errs) < 1.0
