"""E6 bench (Fig 6): mixed local+DL Wang-Landau stepping."""

import numpy as np

from repro.nn import MADE, MADEConfig
from repro.proposals import FlipProposal, MADEProposal, MixtureProposal
from repro.sampling import EnergyGrid, WangLandauSampler


def _mixed_wl(ising_4x4, dl_fraction):
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    if dl_fraction == 0.0:
        proposal = FlipProposal()
    else:
        model = MADE(MADEConfig(16, 2, hidden=(64,)), rng=0)
        proposal = MixtureProposal([
            (FlipProposal(), 1.0 - dl_fraction),
            (MADEProposal(model, composition="free"), dl_fraction),
        ])
    return WangLandauSampler(
        ising_4x4, proposal, grid, np.zeros(16, dtype=np.int8), rng=1
    )


def bench_wl_local_only(benchmark, ising_4x4):
    wl = _mixed_wl(ising_4x4, 0.0)

    def block():
        for _ in range(2_000):
            wl.step()
        return wl.histogram.sum()

    assert benchmark(block) >= 2_000


def bench_wl_mixed_10pct_dl(benchmark, ising_4x4):
    wl = _mixed_wl(ising_4x4, 0.1)

    def block():
        for _ in range(200):
            wl.step()
        return wl.histogram.sum()

    assert benchmark(block) >= 200
