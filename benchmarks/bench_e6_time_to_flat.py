"""E6 bench (Fig 6): mixed local+DL Wang-Landau stepping."""

from repro.nn import MADE, MADEConfig
from repro.proposals import FlipProposal, MADEProposal, MixtureProposal


def _mixture(dl_fraction):
    model = MADE(MADEConfig(16, 2, hidden=(64,)), rng=0)
    return MixtureProposal([
        (FlipProposal(), 1.0 - dl_fraction),
        (MADEProposal(model, composition="free"), dl_fraction),
    ])


def bench_wl_local_only(benchmark, make_ising_wl, throughput):
    wl = make_ising_wl(seed=1)
    throughput(2_000)

    def block():
        for _ in range(2_000):
            wl.step()
        return wl.histogram.sum()

    assert benchmark(block) >= 2_000


def bench_wl_mixed_10pct_dl(benchmark, make_ising_wl, throughput):
    wl = make_ising_wl(seed=1, proposal=_mixture(0.1))
    throughput(200)

    def block():
        for _ in range(200):
            wl.step()
        return wl.histogram.sum()

    assert benchmark(block) >= 200
