"""E12 bench (Table 1): substrate construction costs for the workload table.

Lattice/neighbor-table construction is the setup cost of every workload row;
benchmarked at a production-like size.
"""

import numpy as np

from repro.dos.thermo import log_multinomial
from repro.lattice import bcc, equiatomic_counts


def bench_bcc_neighbor_tables(benchmark):
    """Two-shell neighbor tables for a 16,000-site BCC cell."""

    def build():
        lat = bcc(20)  # 16,000 sites; fresh lattice each round (no cache)
        return lat.neighbor_shells(2)

    shells = benchmark(build)
    assert shells[0].coordination == 8
    assert shells[1].coordination == 6


def bench_state_count_column(benchmark):
    """The combinatorics column of Table 1 across all sizes."""

    def compute():
        return [
            log_multinomial(equiatomic_counts(2 * length**3, 4))
            for length in (3, 4, 6, 8, 12, 16)
        ]

    values = benchmark(compute)
    assert values[-1] > 10_000  # the paper's e^10,000 scale
    assert all(np.isfinite(values))
