"""E11 bench (Fig 9): REWL window machinery — decomposition and exchange."""

import numpy as np

from repro.lattice import random_configuration
from repro.parallel import REWLConfig, REWLDriver, make_windows
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid


def bench_make_windows(benchmark):
    grid = EnergyGrid.uniform(0.0, 1.0, 2_000)

    windows = benchmark(make_windows, grid, 16, 0.6)
    assert len(windows) == 16
    assert windows[-1].hi_bin == 1_999


def bench_exchange_phase(benchmark, hea, hea_counts):
    """The exchange+sync phases alone (communication-side cost of Fig 9)."""
    grid = EnergyGrid.uniform(-14.0, 4.0, 24)
    driver = REWLDriver(
        hamiltonian=hea, proposal_factory=lambda: SwapProposal(), grid=grid,
        initial_config=random_configuration(hea.n_sites, hea_counts, rng=0),
        config=REWLConfig(n_windows=3, walkers_per_window=2, overlap=0.6,
                   exchange_interval=200, seed=1),
    )
    driver._advance_phase()  # give walkers real states first

    def exchange_and_sync():
        driver.rounds += 1
        driver._exchange_phase()
        driver._sync_phase()
        return int(driver.exchange_attempts.sum())

    attempts = benchmark(exchange_and_sync)
    assert attempts >= 1
