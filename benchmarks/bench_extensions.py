"""Benchmarks for the extension subsystems (DESIGN.md §4b).

Not tied to a single paper figure; these keep the extension kernels —
Wolff clusters, WHAM iteration, conditional-MADE proposals, checkpointing —
under performance regression watch alongside the E1-E12 benches.
"""

import numpy as np

from repro.dos import exact_ising_dos_bruteforce, wham
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.nn import ConditionalMADE, ConditionalMADEConfig
from repro.proposals import ConditionalMADEProposal
from repro.sampling import WolffSampler


def bench_wolff_clusters_near_tc(benchmark, throughput):
    """Cluster flips at the critical point (the baseline's best regime)."""
    ham = IsingHamiltonian(square_lattice(16))
    sampler = WolffSampler(ham, 1.0 / 2.27, np.zeros(256, dtype=np.int8), rng=0)
    sampler.run(50)  # settle cluster sizes
    throughput(20)  # cluster flips per round

    def flip_block():
        sampler.run(20)
        return sampler.n_clusters

    assert benchmark(flip_block) >= 20


def bench_wham_iteration(benchmark):
    """Full WHAM solve on exact 4x4 Ising histograms at 6 temperatures."""
    levels, degens = exact_ising_dos_bruteforce(4)
    rng = np.random.default_rng(0)
    betas = np.linspace(0.1, 0.6, 6)
    ln_g = np.log(degens.astype(np.float64))
    hists = []
    for beta in betas:
        w = ln_g - beta * levels
        w -= w.max()
        p = np.exp(w)
        hists.append(rng.multinomial(100_000, p / p.sum()))
    hists = np.asarray(hists)

    result = benchmark(wham, levels, hists, betas)
    assert result.converged


def bench_cmade_proposal(benchmark):
    """Conditional global proposal (sequential decode + 2 exact densities)."""
    ham = IsingHamiltonian(square_lattice(4))
    model = ConditionalMADE(
        ConditionalMADEConfig(n_sites=16, n_species=2, cond_dim=1, hidden=(64,)),
        rng=0,
    )
    prop = ConditionalMADEProposal(
        model, lambda cfg, e: np.array([0.3]), composition="free"
    )
    rng = np.random.default_rng(1)
    cfg = rng.integers(0, 2, 16).astype(np.int8)
    energy = ham.energy(cfg)

    move = benchmark(prop.propose, cfg, ham, rng, energy)
    assert move is not None


def bench_checkpoint_round_trip(benchmark, tmp_path_factory):
    """Save + restore a running REWL driver (job-resubmission path)."""
    from repro.parallel import REWLConfig, REWLDriver, load_checkpoint, save_checkpoint
    from repro.proposals import FlipProposal
    from repro.sampling import EnergyGrid

    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    driver = REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2,
                          exchange_interval=200, seed=0),
    )
    driver.run(max_rounds=2)
    path = tmp_path_factory.mktemp("ckpt") / "rewl.ckpt"

    def round_trip():
        save_checkpoint(driver, path)
        load_checkpoint(driver, path)
        return driver.rounds

    assert benchmark(round_trip) == 2
