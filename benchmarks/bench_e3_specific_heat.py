"""E3 bench (Fig 3): thermodynamics evaluation from a density of states.

The post-processing sweep that turns one ln g into C(T) at every
temperature — benchmarked at paper-like resolution (10^3 bins x 10^2 T).
"""

import numpy as np

from repro.analysis import transition_temperature
from repro.dos import thermodynamics


def _synthetic_dos(n_bins=1_000):
    e = np.linspace(-1.0, 1.0, n_bins)
    ln_g = 5_000.0 * (1.0 - e**2)  # wide parabolic DoS like the HEA's
    return e, ln_g


def bench_thermodynamics_sweep(benchmark):
    energies, ln_g = _synthetic_dos()
    temps = np.linspace(0.05, 3.0, 120)

    tab = benchmark(thermodynamics, energies, ln_g, temps)
    assert np.all(np.isfinite(tab.specific_heat))
    assert np.all(tab.specific_heat >= 0)


def bench_transition_detection(benchmark):
    energies, ln_g = _synthetic_dos()
    temps = np.linspace(0.05, 3.0, 400)
    tab = thermodynamics(energies, ln_g, temps)

    tc, c_max = benchmark(transition_temperature, temps, tab.specific_heat)
    assert temps[0] <= tc <= temps[-1]
    assert c_max > 0
