"""E7 bench (Fig 7): strong scaling — machine-model curves plus a *real*
campaign round at fixed total work.

The ``bench_campaign_*`` trio measures one REWL advance super-step over the
same W windows × K walkers through the three in-process paths: per-walker
scalar stepping (the baseline all prior BENCH rows priced), per-window
batched teams, and the fused SPMD super-step where ONE stacked
``delta_energy_*_many`` gather prices every window's moves
(``backend="fused"``, :mod:`repro.parallel.fused`).  Same seeds, same
windows, same step counts — wall time is the only thing that moves, and the
fused/scalar ratio is the campaign-scale speedup headline (gated in CI via
``--gate-only bench_e7``).
"""

import numpy as np

from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.machine import WorkloadSpec, crusher_mi250x, strong_scaling, summit_v100
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid

GPU_COUNTS = [6, 12, 24, 48, 96, 192, 384, 768, 1536, 3000]

#: Campaign-round shape shared by the bench_campaign_* rows: 2 windows x 64
#: walkers, 100 WL steps per walker per round (ln_f_final tiny so no window
#: converges mid-bench and every round does identical work).
CAMPAIGN_WINDOWS = 2
CAMPAIGN_WALKERS = 64
CAMPAIGN_INTERVAL = 100


def campaign_driver(backend="serial", batched=False,
                    n_windows=CAMPAIGN_WINDOWS):
    ham = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ham.energy_levels())
    return REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(
            n_windows=n_windows, walkers_per_window=CAMPAIGN_WALKERS,
            overlap=0.6, exchange_interval=CAMPAIGN_INTERVAL,
            ln_f_final=1e-12, seed=5, batched_walkers=batched,
            backend=backend,
        ),
    )


def _campaign_steps(n_windows=CAMPAIGN_WINDOWS):
    return n_windows * CAMPAIGN_WALKERS * CAMPAIGN_INTERVAL


def bench_campaign_classic_scalar(benchmark, throughput):
    """Baseline: one advance round, per-walker scalar stepping."""
    drv = campaign_driver()
    throughput(_campaign_steps())
    benchmark(drv._advance_phase)


def bench_campaign_batched_windows(benchmark, throughput):
    """Per-window batched teams: W independent K-row super-step dispatches."""
    drv = campaign_driver(batched=True)
    throughput(_campaign_steps())
    benchmark(drv._advance_phase)


def bench_campaign_fused(benchmark, throughput):
    """Fused SPMD super-step: one stacked W*K-row gather per WL step."""
    drv = campaign_driver(backend="fused")
    throughput(_campaign_steps())
    benchmark(drv._advance_phase)


def bench_strong_scaling_v100(benchmark):
    points = benchmark(
        strong_scaling, summit_v100(), WorkloadSpec(), 3000, GPU_COUNTS
    )
    times = [p.round_time for p in points]
    assert all(a > b for a, b in zip(times, times[1:]))
    assert points[-1].efficiency > 0.5


def bench_strong_scaling_mi250x(benchmark):
    points = benchmark(
        strong_scaling, crusher_mi250x(), WorkloadSpec(), 3000, GPU_COUNTS
    )
    assert points[-1].speedup > 100
