"""E7 bench (Fig 7): strong-scaling curve generation (machine model).

Also re-asserts the curve shape the figure shows: monotone speedup with a
rolloff, both machines.
"""

from repro.machine import WorkloadSpec, crusher_mi250x, strong_scaling, summit_v100

GPU_COUNTS = [6, 12, 24, 48, 96, 192, 384, 768, 1536, 3000]


def bench_strong_scaling_v100(benchmark):
    points = benchmark(
        strong_scaling, summit_v100(), WorkloadSpec(), 3000, GPU_COUNTS
    )
    times = [p.round_time for p in points]
    assert all(a > b for a, b in zip(times, times[1:]))
    assert points[-1].efficiency > 0.5


def bench_strong_scaling_mi250x(benchmark):
    points = benchmark(
        strong_scaling, crusher_mi250x(), WorkloadSpec(), 3000, GPU_COUNTS
    )
    assert points[-1].speedup > 100
