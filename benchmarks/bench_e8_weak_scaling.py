"""E8 bench (Fig 8): weak scaling — machine-model curves plus a real fused
campaign round at doubled window count (constant work *per window*, so the
per-step cost against ``bench_campaign_fused`` is the measured weak-scaling
efficiency of the fused super-step)."""

from bench_e7_strong_scaling import campaign_driver, _campaign_steps
from repro.machine import WorkloadSpec, crusher_mi250x, summit_v100, weak_scaling

GPU_COUNTS = [6, 12, 24, 48, 96, 192, 384, 768, 1536, 3000]


def bench_campaign_fused_weak(benchmark, throughput):
    """One fused advance round at 2x the windows of ``bench_campaign_fused``."""
    drv = campaign_driver(backend="fused", n_windows=4)
    throughput(_campaign_steps(n_windows=4))
    benchmark(drv._advance_phase)


def bench_weak_scaling_both_machines(benchmark):
    def sweep():
        return [
            weak_scaling(machine, WorkloadSpec(), GPU_COUNTS)
            for machine in (summit_v100(), crusher_mi250x())
        ]

    curves = benchmark(sweep)
    for points in curves:
        effs = [p.efficiency for p in points]
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.85
