"""E8 bench (Fig 8): weak-scaling curve generation (machine model)."""

from repro.machine import WorkloadSpec, crusher_mi250x, summit_v100, weak_scaling

GPU_COUNTS = [6, 12, 24, 48, 96, 192, 384, 768, 1536, 3000]


def bench_weak_scaling_both_machines(benchmark):
    def sweep():
        return [
            weak_scaling(machine, WorkloadSpec(), GPU_COUNTS)
            for machine in (summit_v100(), crusher_mi250x())
        ]

    curves = benchmark(sweep)
    for points in curves:
        effs = [p.efficiency for p in points]
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.85
