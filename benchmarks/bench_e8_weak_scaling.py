"""E8 bench (Fig 8): weak scaling — machine-model curves plus a real fused
campaign round at doubled window count (constant work *per window*, so the
per-step cost against ``bench_campaign_fused`` is the measured weak-scaling
efficiency of the fused super-step), plus the ultra-large-scale tier rows:
neighbor-table build and streaming full-energy evaluation at ≥10⁵ BCC
sites (paper-like system sizes), RSS-gated."""

import numpy as np

from bench_e7_strong_scaling import campaign_driver, _campaign_steps
from repro.hamiltonians import NbMoTaWHamiltonian
from repro.kernels import ChunkedPairTables, PairTables
from repro.lattice import bcc, equiatomic_counts, random_configuration
from repro.machine import WorkloadSpec, crusher_mi250x, summit_v100, weak_scaling

GPU_COUNTS = [6, 12, 24, 48, 96, 192, 384, 768, 1536, 3000]


def bench_campaign_fused_weak(benchmark, throughput):
    """One fused advance round at 2x the windows of ``bench_campaign_fused``."""
    drv = campaign_driver(backend="fused", n_windows=4)
    throughput(_campaign_steps(n_windows=4))
    benchmark(drv._advance_phase)


def bench_weak_scaling_both_machines(benchmark):
    def sweep():
        return [
            weak_scaling(machine, WorkloadSpec(), GPU_COUNTS)
            for machine in (summit_v100(), crusher_mi250x())
        ]

    curves = benchmark(sweep)
    for points in curves:
        effs = [p.efficiency for p in points]
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.85


def bench_e8_ultra_tables_100k(benchmark, rss_budget):
    """PairTables (int32) build for a 10⁵-site BCC two-shell supercell."""
    mats = NbMoTaWHamiltonian(bcc(3), n_shells=2).shell_matrices

    def build():
        lat = bcc(37)  # fresh lattice: the shell cache must not help
        return PairTables(lat.neighbor_shells(2), mats)

    t = benchmark(build)
    assert t.tables[0].dtype == np.int32
    rss_budget(2048)


def bench_e8_ultra_streaming_energy_100k(benchmark, throughput, rss_budget):
    """Streaming (chunked) full-energy evaluation at 10⁵ sites."""
    lat = bcc(37)  # 101,306 sites
    mats = NbMoTaWHamiltonian(bcc(3), n_shells=2).shell_matrices
    config = random_configuration(
        lat.n_sites, equiatomic_counts(lat.n_sites, 4), rng=0)
    chunked = ChunkedPairTables(lat, mats)
    throughput(lat.n_sites)  # sites evaluated per round

    energy = benchmark(chunked.energy, config)
    assert np.isfinite(energy)
    rss_budget(2048)
