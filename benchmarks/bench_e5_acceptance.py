"""E5 bench (Fig 5/Table 2): proposal kernel costs.

The per-proposal costs that set the local-vs-DL trade-off: swap ΔE
evaluation, VAE global proposal (decode + IWAE marginals), MADE global
proposal (exact densities).
"""

import numpy as np

from repro.nn import MADE, CategoricalVAE, MADEConfig, VAEConfig
from repro.proposals import MADEProposal, SwapProposal, VAEProposal


def bench_swap_proposal(benchmark, hea, hea_config, throughput):
    prop = SwapProposal()
    rng = np.random.default_rng(0)
    energy = hea.energy(hea_config)
    throughput(1)  # one proposal per round

    move = benchmark(prop.propose, hea_config, hea, rng, energy)
    assert move is not None


def bench_vae_proposal(benchmark, hea, hea_config):
    model = CategoricalVAE(
        VAEConfig(hea.n_sites, 4, latent_dim=8, hidden=(64, 32)), rng=0
    )
    prop = VAEProposal(model, n_marginal_samples=16, composition="repair")
    rng = np.random.default_rng(1)
    energy = hea.energy(hea_config)

    def propose():
        prop.invalidate_cache()  # price the un-cached (worst) case
        return prop.propose(hea_config, hea, rng, current_energy=energy)

    move = benchmark(propose)
    assert move is not None and move.n_sites_changed == hea.n_sites


def bench_made_proposal(benchmark, hea, hea_config):
    model = MADE(MADEConfig(hea.n_sites, 4, hidden=(128,)), rng=0)
    prop = MADEProposal(model, composition="repair", max_reject_tries=8)
    rng = np.random.default_rng(2)
    energy = hea.energy(hea_config)

    move = benchmark(prop.propose, hea_config, hea, rng, energy)
    assert move is not None
