"""Shared fixtures for the benchmark harness.

Each ``bench_eNN_*.py`` file regenerates (a small-scale instance of) one
paper table/figure kernel; the full-fidelity harness is
``python -m repro.experiments.run_all``.  Benchmarks are sized so the whole
directory finishes in a few minutes under ``--benchmark-only``.
"""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration, square_lattice


@pytest.fixture(scope="session")
def ising_4x4():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture(scope="session")
def hea():
    return NbMoTaWHamiltonian(bcc(3))


@pytest.fixture(scope="session")
def hea_counts(hea):
    return equiatomic_counts(hea.n_sites, 4)


@pytest.fixture()
def hea_config(hea, hea_counts):
    return random_configuration(hea.n_sites, hea_counts, rng=0)
