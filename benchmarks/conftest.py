"""Shared fixtures for the benchmark harness.

Each ``bench_eNN_*.py`` file regenerates (a small-scale instance of) one
paper table/figure kernel; the full-fidelity harness is
``python -m repro.experiments.run_all``.  Benchmarks are sized so the whole
directory finishes in a few minutes under ``--benchmark-only``.

The common runner is :mod:`repro.obs.bench` (``python -m repro obs bench``):
it executes any subset of these files in a child pytest and captures the
results as a versioned ``BENCH_<n>.json`` snapshot.  Benches that loop a
known number of MC steps per round record it via the ``throughput`` fixture
so the snapshot (and ``bench-compare``) can report steps/s, not just wall
time.
"""

import numpy as np
import pytest

from repro.hamiltonians import IsingHamiltonian, NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration, square_lattice


@pytest.fixture(scope="session")
def ising_4x4():
    return IsingHamiltonian(square_lattice(4))


@pytest.fixture(scope="session")
def hea():
    return NbMoTaWHamiltonian(bcc(3))


@pytest.fixture(scope="session")
def hea_counts(hea):
    return equiatomic_counts(hea.n_sites, 4)


@pytest.fixture()
def hea_config(hea, hea_counts):
    return random_configuration(hea.n_sites, hea_counts, rng=0)


@pytest.fixture()
def make_ising_wl(ising_4x4):
    """Factory for the 4x4 Ising Wang-Landau sampler the step benches share."""
    from repro.proposals import FlipProposal
    from repro.sampling import EnergyGrid, WangLandauSampler

    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())

    def _make(seed=0, ln_f_final=1e-4, proposal=None):
        return WangLandauSampler(
            hamiltonian=ising_4x4,
            proposal=proposal if proposal is not None else FlipProposal(),
            grid=grid, initial_config=np.zeros(16, dtype=np.int8),
            rng=seed, ln_f_final=ln_f_final,
        )

    return _make


@pytest.fixture()
def throughput(benchmark):
    """Record a bench's MC-steps-per-round in the pytest-benchmark JSON.

    ``repro.obs.bench`` divides it by the measured mean round time to put a
    steps/s figure in the BENCH snapshot.
    """

    def _record(steps_per_round):
        benchmark.extra_info["steps_per_round"] = int(steps_per_round)

    return _record


@pytest.fixture()
def rss_budget(benchmark):
    """Record a peak-RSS budget and the measured peak into the snapshot.

    Call ``rss_budget(budget_mb)`` *after* the benchmarked work ran; the
    fixture stamps ``rss_budget_kb`` and the process ``ru_maxrss`` into
    ``extra_info`` so ``bench-compare`` can gate memory, not just time.
    ``ru_maxrss`` is max-so-far for the whole child process (earlier
    benches in the same run contribute), so budgets are sized as hard
    ceilings for the whole tier, not tight per-bench envelopes.
    """

    def _record(budget_mb):
        import resource

        benchmark.extra_info["rss_budget_kb"] = int(budget_mb * 1024)
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        import sys
        if sys.platform == "darwin":  # bytes there, kB on Linux
            peak_kb //= 1024
        benchmark.extra_info["peak_rss_kb"] = int(peak_kb)

    return _record
