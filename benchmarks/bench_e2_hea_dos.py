"""E2 bench (Fig 2): the REWL round on the HEA workload.

Benchmarks one advance/exchange/sync round of the parallel driver — the
unit of work the scaling model prices — plus the DoS stitcher.
"""

import numpy as np

from repro.dos import stitch_windows
from repro.lattice import random_configuration
from repro.parallel import REWLConfig, REWLDriver, make_windows
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid


def bench_rewl_round(benchmark, hea, hea_counts, throughput):
    """One bulk-synchronous REWL round (2 windows x 2 walkers, HEA N=54)."""
    grid = EnergyGrid.uniform(-14.0, 4.0, 24)
    driver = REWLDriver(
        hamiltonian=hea, proposal_factory=lambda: SwapProposal(), grid=grid,
        initial_config=random_configuration(hea.n_sites, hea_counts, rng=0),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=500, seed=0),
    )
    throughput(2 * 2 * 500)  # windows x walkers x steps per round

    def one_round():
        driver._advance_phase()
        driver.rounds += 1
        driver._exchange_phase()
        driver._sync_phase()
        return driver.rounds

    rounds = benchmark(one_round)
    assert rounds >= 1


def bench_stitching(benchmark):
    """Stitch 8 synthetic window pieces over 400 bins (Fig 2 assembly)."""
    rng = np.random.default_rng(0)
    grid = EnergyGrid.uniform(0.0, 1.0, 400)
    x = grid.centers
    truth = 2_000.0 * x * (1 - x)
    windows = make_windows(grid, 8, overlap=0.5)
    pieces = [
        truth[w.lo_bin : w.hi_bin + 1] + rng.uniform(-50, 50) for w in windows
    ]
    visited = [np.ones(w.n_bins, dtype=bool) for w in windows]

    stitched = benchmark(stitch_windows, grid, windows, pieces, visited)
    rel = stitched.ln_g - stitched.ln_g[0]
    assert np.abs(rel - (truth - truth[0])).max() < 1e-6
