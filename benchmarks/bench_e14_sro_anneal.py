"""E14 bench: the ultra-large-scale tier — SRO-targeted structure
generation vs full-energy annealing, plus the 10⁶-site end-to-end row.

Three rows, all RSS-gated via the ``rss_budget`` fixture:

- ``bench_e14_sro_anneal_100k`` — steady-state candidate throughput of the
  α-target anneal on a 10⁵-site BCC cell (the headline configs/s number);
- ``bench_e14_energy_anneal_baseline_100k`` — the conventional full-energy
  Metropolis anneal on the same lattice (the ≥10× comparison denominator);
- ``bench_e14_ultra_tier_1m`` — the acceptance-criterion row: a 10⁶-site
  BCC two-shell supercell runs PairTables build + one streaming
  full-energy evaluation + one converging SRO anneal in a single round,
  under the documented 2 GB peak-RSS budget (DESIGN.md §17).
"""

import numpy as np

from repro.hamiltonians import NbMoTaWHamiltonian
from repro.kernels import ChunkedPairTables, PairTables
from repro.lattice import (
    anneal_energy,
    anneal_sro,
    bcc,
    equiatomic_counts,
    random_configuration,
)

ALPHA_TARGET = -0.05
N_SPECIES = 4


def _targets():
    t = np.full((N_SPECIES, N_SPECIES), np.nan)
    t[1, 2] = t[2, 1] = ALPHA_TARGET  # Mo-Ta
    return t


def _prepared_lattice(length):
    lat = bcc(length)
    lat.neighbor_shells(1)  # table build is bench_e8's subject, not ours
    return lat


def bench_e14_sro_anneal_100k(benchmark, throughput, rss_budget):
    """Steady-state α-target candidate pricing at 10⁵ sites."""
    lat = _prepared_lattice(37)  # 101,306 sites
    config = random_configuration(
        lat.n_sites, equiatomic_counts(lat.n_sites, N_SPECIES), rng=0)
    batch, iters = 1024, 100
    throughput(batch * iters)

    def run():
        return anneal_sro(
            lat, N_SPECIES, _targets(), config=config,
            batch=batch, max_iters=iters, tol=0.0, rng=0)

    result = benchmark(run)
    assert result.candidates_priced == batch * iters
    rss_budget(2048)


def bench_e14_energy_anneal_baseline_100k(benchmark, throughput, rss_budget):
    """Full-energy scalar Metropolis anneal on the same 10⁵-site lattice."""
    lat = _prepared_lattice(37)
    ham = NbMoTaWHamiltonian(lat, n_shells=2)
    config = random_configuration(
        lat.n_sites, equiatomic_counts(lat.n_sites, N_SPECIES), rng=0)
    steps = 2000
    throughput(steps)

    def run():
        return anneal_energy(ham, config, n_steps=steps, rng=0)

    benchmark(run)
    rss_budget(2048)


def bench_e14_ultra_tier_1m(benchmark, throughput, rss_budget):
    """10⁶-site acceptance row: tables + streaming energy + SRO anneal.

    One round only — this is an end-to-end envelope measurement (and the
    RSS gate), not a statistics-grade timing.
    """
    lat = bcc(79)  # 986,078 sites, two shells below
    config = random_configuration(
        lat.n_sites, equiatomic_counts(lat.n_sites, N_SPECIES), rng=0)
    mats = NbMoTaWHamiltonian(bcc(3), n_shells=2).shell_matrices
    batch, iters = 1024, 8000
    results = {}

    def tier():
        shells = lat.neighbor_shells(2)
        tables = PairTables(shells, mats)
        chunked = ChunkedPairTables(lat, mats)
        energy = chunked.energy(config)
        res = anneal_sro(
            lat, N_SPECIES, _targets(), config=config,
            batch=batch, max_iters=iters, tol=0.01, rng=0)
        results["res"] = res
        results["energy"] = energy
        results["table_mb"] = tables.table_nbytes() / 1e6
        return res

    benchmark.pedantic(tier, rounds=1, iterations=1, warmup_rounds=0)
    res = results["res"]
    assert res.converged, (res.max_abs_error, res.n_iters)
    assert np.isfinite(results["energy"])
    throughput(res.candidates_priced)  # actual work: converged early
    rss_budget(2048)
