"""Telemetry overhead: the no-op bundle must not tax the WL hot loop.

The obs subsystem's performance contract is that a disabled
:class:`repro.obs.Telemetry` (null event sink) costs <3% of Wang-Landau
step throughput versus entirely uninstrumented code, because the step loop
only touches plain integer counters and ``emit`` bails on one boolean.
A JSONL-sink run is benchmarked alongside for the real cost of tracing.

Run: ``pytest benchmarks/bench_obs_overhead.py --benchmark-only``.
"""

import numpy as np

from repro.obs import (
    ConvergenceConfig,
    ConvergenceLedger,
    Instrumentation,
    JsonlSink,
    SectionProfiler,
    Telemetry,
)
from repro.obs.events import EventLog
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid

_BLOCK = 20_000  # WL steps per benchmark round


def bench_wl_steps_bare(benchmark, make_ising_wl, throughput):
    """Baseline: the raw step loop, no telemetry object anywhere."""
    wl = make_ising_wl(ln_f_final=1e-12)  # never converges inside the bench
    throughput(_BLOCK)

    def block():
        for _ in range(_BLOCK):
            wl.step()
        return wl.n_steps

    assert benchmark(block) >= _BLOCK


def bench_wl_run_null_telemetry(benchmark, make_ising_wl, throughput):
    """run() with the disabled default Telemetry — the <3% overhead target."""
    wl = make_ising_wl(ln_f_final=1e-12)
    throughput(_BLOCK)
    tel = Telemetry()
    assert not tel.enabled

    def block():
        wl.run(max_steps=wl.n_steps + _BLOCK, telemetry=tel)
        return wl.n_steps

    assert benchmark(block) >= _BLOCK


def bench_wl_steps_profiled(benchmark, make_ising_wl, throughput):
    """The step loop with a live sampling profiler (default stride).

    The profiler's overhead contract: counter-sampled timing keeps this
    within a few percent of ``bench_wl_steps_bare``.
    """
    wl = make_ising_wl(ln_f_final=1e-12)
    wl.enable_profiling(SectionProfiler())
    throughput(_BLOCK)

    def block():
        for _ in range(_BLOCK):
            wl.step()
        return wl.n_steps

    assert benchmark(block) >= _BLOCK


def bench_wl_run_jsonl_telemetry(benchmark, make_ising_wl, throughput,
                                 tmp_path_factory):
    """run() with a live JSONL sink — what a traced run actually costs."""
    wl = make_ising_wl(ln_f_final=1e-12)
    throughput(_BLOCK)
    trace = tmp_path_factory.mktemp("obs") / "bench.jsonl"
    tel = Telemetry(events=EventLog(run_id="bench", sinks=[JsonlSink(trace)]))

    def block():
        wl.run(max_steps=wl.n_steps + _BLOCK, telemetry=tel)
        return wl.n_steps

    assert benchmark(block) >= _BLOCK
    tel.close()


def bench_rewl_round_null_telemetry(benchmark, ising_4x4):
    """One REWL advance+exchange+sync round with disabled telemetry."""
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    driver = REWLDriver(
        hamiltonian=ising_4x4, proposal_factory=lambda: FlipProposal(),
        grid=grid, initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=1_000, ln_f_final=1e-12, seed=0),
        instrumentation=Instrumentation(telemetry=Telemetry()),
    )

    def one_round():
        driver._advance_phase()
        driver.rounds += 1
        driver._exchange_phase()
        driver._sync_phase()
        return driver.rounds

    assert benchmark(one_round) >= 1


def bench_rewl_round_ledger(benchmark, ising_4x4):
    """One REWL round with the ConvergenceLedger sampling *every* round.

    Worst-case diagnostics cost (production default strides every 10th
    round); gated in CI against the baseline alongside the other
    bench_obs_overhead entries.
    """
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    driver = REWLDriver(
        hamiltonian=ising_4x4, proposal_factory=lambda: FlipProposal(),
        grid=grid, initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=1_000, ln_f_final=1e-12, seed=0),
        instrumentation=Instrumentation(
            telemetry=Telemetry(),
            convergence=ConvergenceLedger(ConvergenceConfig(sample_every=1)),
        ),
    )

    def one_round():
        driver._advance_phase()
        driver.rounds += 1
        driver._exchange_phase()
        driver._sync_phase()
        driver.convergence.observe_round(driver)
        return driver.rounds

    assert benchmark(one_round) >= 1


def bench_rewl_round_timeseries_served(benchmark, ising_4x4):
    """One REWL round with the TimeSeriesRecorder sampling *every* round
    while the HTTP status server is up and scraped once per round.

    Worst-case live-telemetry cost: the production default strides every
    5th round and Prometheus scrapes every 15-60 s, which amortizes this
    to ≤2% of ``bench_rewl_round_null_telemetry``.  Gated in CI against
    the baseline with the other bench_obs_overhead entries.
    """
    import urllib.request

    from repro.obs.server import StatusServer
    from repro.obs.timeseries import TimeSeriesConfig, TimeSeriesRecorder

    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    recorder = TimeSeriesRecorder(TimeSeriesConfig(sample_every=1))
    driver = REWLDriver(
        hamiltonian=ising_4x4, proposal_factory=lambda: FlipProposal(),
        grid=grid, initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=2, walkers_per_window=2, overlap=0.6,
                   exchange_interval=1_000, ln_f_final=1e-12, seed=0),
        instrumentation=Instrumentation(telemetry=Telemetry(),
                                        timeseries=recorder),
    )
    server = StatusServer(port=0).start()
    server.board.publish_recorder(recorder)

    def one_round():
        driver._advance_phase()
        driver.rounds += 1
        driver._exchange_phase()
        driver._sync_phase()
        driver.timeseries.observe_round(driver)
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as r:
            r.read()
        return driver.rounds

    assert benchmark(one_round) >= 1
    server.stop()
