"""E10 bench (Table 4): training-step and marginal-estimator costs."""

import numpy as np

from repro.lattice import one_hot, random_configuration
from repro.nn import MADE, Adam, CategoricalVAE, MADEConfig, VAEConfig
from repro.training import ReplayBuffer


def _batch(n_sites, n_species, batch=64, seed=0):
    rng = np.random.default_rng(seed)
    rows = [
        one_hot(rng.integers(0, n_species, n_sites).astype(np.int8), n_species)
        for _ in range(batch)
    ]
    return np.stack(rows)


def bench_vae_train_step(benchmark):
    model = CategoricalVAE(VAEConfig(54, 4, latent_dim=8, hidden=(96, 48)), rng=0)
    opt = Adam(model.parameters(), lr=1e-3)
    data = _batch(54, 4)
    rng = np.random.default_rng(1)

    metrics = benchmark(model.train_step, data, opt, rng)
    assert np.isfinite(metrics["loss"])


def bench_made_train_step(benchmark):
    model = MADE(MADEConfig(54, 4, hidden=(128,)), rng=0)
    opt = Adam(model.parameters(), lr=1e-3)
    data = _batch(54, 4, seed=2)

    metrics = benchmark(model.train_step, data, opt)
    assert np.isfinite(metrics["loss"])


def bench_vae_log_marginal_s16(benchmark):
    """The IWAE estimate that dominates VAE-proposal cost (S=16)."""
    model = CategoricalVAE(VAEConfig(54, 4, latent_dim=8, hidden=(96, 48)), rng=0)
    x = _batch(54, 4, batch=1, seed=3)
    rng = np.random.default_rng(4)

    out = benchmark(model.log_marginal, x, 16, rng)
    assert np.isfinite(out[0])


def bench_training_round_throughput(benchmark, throughput):
    """One online-refresh round: buffer sample → one-hot encode → MADE step.

    Exercises the vectorized ``ReplayBuffer.sample_one_hot`` encoding path
    (single-scatter batch one-hot, no per-row Python loop) feeding a
    gradient step — the per-refresh unit of the Phase-2 training loop;
    steps/s counts training examples.
    """
    n_sites, n_species, batch = 54, 4, 64
    buf = ReplayBuffer(capacity=512, n_sites=n_sites, n_species=n_species)
    fill_rng = np.random.default_rng(6)
    for _ in range(512):
        buf.add(fill_rng.integers(0, n_species, n_sites).astype(np.int8))
    model = MADE(MADEConfig(n_sites, n_species, hidden=(128,)), rng=0)
    opt = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(7)
    throughput(batch)

    def round_():
        data = buf.sample_one_hot(batch, rng)
        return model.train_step(data, opt)

    metrics = benchmark(round_)
    assert np.isfinite(metrics["loss"])


def bench_made_sampling(benchmark):
    """Sequential MADE decode of 8 configurations (exact global proposals)."""
    model = MADE(MADEConfig(54, 4, hidden=(128,)), rng=0)
    rng = np.random.default_rng(5)

    configs = benchmark(model.sample, 8, rng)
    assert configs.shape == (8, 54)
