"""E9 bench (Table 3): the calibration kernels behind the throughput table.

These host-side measurements are the inputs the machine model prices; the
benchmark records them so throughput regressions are caught.  The
``wl_steps_scalar`` / ``wl_steps_batched`` pair measures the end-to-end
Wang-Landau stepping speedup delivered by the batched multi-walker mode
(``WLConfig(batch_size=K)``) — the headline number of the kernels layer.
"""

import numpy as np

from repro.nn import MADE, MADEConfig
from repro.proposals import FlipProposal, MADEProposal, SwapProposal
from repro.sampling import EnergyGrid, MetropolisSampler, WLConfig, make_wang_landau


def _made_proposal(hea):
    """Small MADE proposal over the 54-site NbMoTaW system.

    ``composition="free"`` keeps both benches on the one-forward-per-call
    inference path (no reject/repair retries), so the scalar/batched pair
    isolates exactly the per-walker model-call overhead the batched path
    amortizes.
    """
    model = MADE(MADEConfig(n_sites=hea.n_sites, n_species=hea.n_species,
                            hidden=(64,)), rng=0)
    return MADEProposal(model, composition="free")


def bench_delta_energy_swap(benchmark, hea, hea_config, throughput):
    """O(z) incremental ΔE — the single hottest kernel in the system."""
    rng = np.random.default_rng(0)
    ii = rng.integers(0, hea.n_sites, 1_000)
    jj = rng.integers(0, hea.n_sites, 1_000)
    k = [0]
    throughput(1)  # one ΔE evaluation per round

    def one():
        k[0] = (k[0] + 1) % 1_000
        return hea.delta_energy_swap(hea_config, int(ii[k[0]]), int(jj[k[0]]))

    benchmark(one)


def bench_delta_energy_swap_batch(benchmark, hea, hea_config, throughput):
    """Vectorized alternative-swap ΔE (multiple-try / DL-proposal scoring)."""
    rng = np.random.default_rng(1)
    ii = rng.integers(0, hea.n_sites, 4_096)
    jj = rng.integers(0, hea.n_sites, 4_096)
    throughput(4_096)

    out = benchmark(hea.delta_energy_swap_batch, hea_config, ii, jj)
    assert out.shape == (4_096,)


def bench_delta_energy_flip_batch(benchmark, hea, hea_config, throughput):
    """Vectorized alternative-flip ΔE."""
    rng = np.random.default_rng(2)
    sites = rng.integers(0, hea.n_sites, 4_096)
    news = rng.integers(0, hea.n_species, 4_096)
    throughput(4_096)

    out = benchmark(hea.delta_energy_flip_batch, hea_config, sites, news)
    assert out.shape == (4_096,)


def bench_delta_energy_swap_many(benchmark, hea, hea_config, throughput):
    """Multi-walker ΔE: one swap per row of a (B, n_sites) config batch."""
    B = 512
    rng = np.random.default_rng(3)
    configs = np.tile(hea_config, (B, 1))
    ii = rng.integers(0, hea.n_sites, B)
    jj = rng.integers(0, hea.n_sites, B)
    throughput(B)

    out = benchmark(hea.delta_energy_swap_many, configs, ii, jj)
    assert out.shape == (B,)


def bench_metropolis_steps(benchmark, hea, hea_config, throughput):
    """End-to-end Metropolis step throughput (Table 3 calibration row)."""
    sampler = MetropolisSampler(hea, SwapProposal(), 5.0, hea_config, rng=2)
    throughput(1_000)

    def block():
        sampler.run(1_000)
        return sampler.total_steps

    assert benchmark(block) >= 1_000


def bench_energies(benchmark, hea, hea_config, throughput):
    """Batched full-energy evaluation (DL-proposal re-scoring path)."""
    configs = np.stack([hea_config] * 64)
    throughput(64)

    out = benchmark(hea.energies, configs)
    assert out.shape == (64,)


def bench_dl_propose_scalar(benchmark, hea, hea_config, throughput):
    """Per-walker DL proposal calls: 8 walkers, 8 model sampling passes.

    The batch_size=1 reference for ``bench_dl_propose_batched`` — steps/s
    counts proposals, directly comparable between the two.
    """
    prop = _made_proposal(hea)
    rng = np.random.default_rng(7)
    e0 = float(hea.energy(hea_config))
    B = 8
    throughput(B)

    def block():
        moves = [
            prop.propose(hea_config, hea, rng, current_energy=e0)
            for _ in range(B)
        ]
        return len(moves)

    assert benchmark(block) == B


def bench_dl_propose_batched(benchmark, hea, hea_config, throughput):
    """Team-batched DL proposal inference: 8 walkers, ONE model sampling pass.

    The tentpole path: one ``model.sample(8)`` decode, one cached current
    ``log q`` lookup, one batched full-config energy evaluation
    (DESIGN.md §12).
    """
    prop = _made_proposal(hea)
    rng = np.random.default_rng(7)
    B = 8
    configs = np.tile(hea_config, (B, 1))
    energies = hea.energies(configs)
    throughput(B)

    def block():
        move = prop.propose_many(configs, hea, rng, current_energies=energies)
        return move.batch_size

    assert benchmark(block) == B


def bench_wl_steps_scalar(benchmark, ising_4x4, throughput):
    """Scalar Wang-Landau stepping (the batch_size=1 reference)."""
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    wl = make_wang_landau(
        hamiltonian=ising_4x4, proposal=FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8), rng=0,
    )
    throughput(1_000)

    def block():
        for _ in range(1_000):
            wl.step()
        return wl.n_steps

    assert benchmark(block) >= 1_000


def bench_wl_steps_batched(benchmark, ising_4x4, throughput):
    """Batched multi-walker WL stepping — the kernels-layer headline.

    64 walkers per super-step against a shared ln g; steps/s counts walker
    steps, directly comparable to ``bench_wl_steps_scalar``.
    """
    B, n_super = 64, 100
    grid = EnergyGrid.from_levels(ising_4x4.energy_levels())
    wl = make_wang_landau(
        hamiltonian=ising_4x4, proposal=FlipProposal(), grid=grid,
        initial_config=np.zeros(16, dtype=np.int8), rng=0,
        config=WLConfig(batch_size=B),
    )
    throughput(B * n_super)

    def block():
        wl.steps(n_super)
        return wl.n_steps

    assert benchmark(block) >= B * n_super
