"""E9 bench (Table 3): the calibration kernels behind the throughput table.

These host-side measurements are the inputs the machine model prices; the
benchmark records them so throughput regressions are caught.
"""

import numpy as np

from repro.proposals import SwapProposal
from repro.sampling import MetropolisSampler


def bench_delta_energy_swap(benchmark, hea, hea_config, throughput):
    """O(z) incremental ΔE — the single hottest kernel in the system."""
    rng = np.random.default_rng(0)
    ii = rng.integers(0, hea.n_sites, 1_000)
    jj = rng.integers(0, hea.n_sites, 1_000)
    k = [0]
    throughput(1)  # one ΔE evaluation per round

    def one():
        k[0] = (k[0] + 1) % 1_000
        return hea.delta_energy_swap(hea_config, int(ii[k[0]]), int(jj[k[0]]))

    benchmark(one)


def bench_delta_energy_swap_batch(benchmark, hea, hea_config, throughput):
    """Vectorized batch ΔE (the GPU-like evaluation path)."""
    rng = np.random.default_rng(1)
    ii = rng.integers(0, hea.n_sites, 4_096)
    jj = rng.integers(0, hea.n_sites, 4_096)
    throughput(4_096)

    out = benchmark(hea.delta_energy_swap_batch, hea_config, ii, jj)
    assert out.shape == (4_096,)


def bench_metropolis_steps(benchmark, hea, hea_config, throughput):
    """End-to-end Metropolis step throughput (Table 3 calibration row)."""
    sampler = MetropolisSampler(hea, SwapProposal(), 5.0, hea_config, rng=2)
    throughput(1_000)

    def block():
        sampler.run(1_000)
        return sampler.total_steps

    assert benchmark(block) >= 1_000


def bench_energy_batch(benchmark, hea, hea_config, throughput):
    """Batched full-energy evaluation (DL-proposal re-scoring path)."""
    configs = np.stack([hea_config] * 64)
    throughput(64)

    out = benchmark(hea.energy_batch, configs)
    assert out.shape == (64,)
