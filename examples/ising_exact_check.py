"""Validate the sampler stack against exactly solvable physics.

Every number produced here has an exact reference:

- the 4x4 Ising density of states (full enumeration),
- finite-lattice U(T) and C(T) at any size (Kaufman's closed form),
- the Onsager critical temperature.

This is the example to run when modifying samplers — if these curves drift,
something fundamental broke.

Usage: python examples/ising_exact_check.py [L]   (default L=6)
"""

import sys

import numpy as np

from repro.dos import (
    exact_ising_dos_bruteforce,
    exact_ising_internal_energy,
    exact_ising_specific_heat,
    onsager_critical_temperature,
    thermodynamics,
)
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.proposals import FlipProposal
from repro.sampling import EnergyGrid, WangLandauSampler
from repro.util.tables import format_table


def main(length: int = 6) -> None:
    # ---- exact DoS vs Wang-Landau at 4x4 --------------------------------
    ham4 = IsingHamiltonian(square_lattice(4))
    wl4 = WangLandauSampler(
        hamiltonian=ham4, proposal=FlipProposal(),
        grid=EnergyGrid.from_levels(ham4.energy_levels()),
        initial_config=np.zeros(16, dtype=np.int8), rng=0, ln_f_final=1e-5,
    )
    res4 = wl4.run()
    levels, degens = exact_ising_dos_bruteforce(4)
    exact = {float(e): np.log(d) for e, d in zip(levels, degens)}
    mg = res4.masked_ln_g()
    errs = [
        abs((mg[k] - mg[res4.visited][0]) - (exact[float(res4.grid.centers[k])] - exact[-32.0]))
        for k in np.nonzero(res4.visited)[0]
        if float(res4.grid.centers[k]) in exact
    ]
    print(f"4x4 Wang-Landau vs enumeration: max |Δ ln g| = {max(errs):.3f} "
          f"({res4.n_steps:,} steps)")

    # ---- WL thermodynamics vs Kaufman at LxL ----------------------------
    ham = IsingHamiltonian(square_lattice(length))
    wl = WangLandauSampler(
        hamiltonian=ham, proposal=FlipProposal(),
        grid=EnergyGrid.from_levels(ham.energy_levels()),
        initial_config=np.zeros(length * length, dtype=np.int8),
        rng=1, ln_f_final=1e-5,
    )
    res = wl.run(max_steps=80_000_000)
    temps = np.linspace(1.8, 3.2, 8)
    tab = thermodynamics(res.grid.centers[res.visited], res.masked_ln_g()[res.visited], temps)
    n = length * length
    rows = []
    for t, u, c in zip(temps, tab.internal_energy, tab.specific_heat):
        rows.append([
            t, u / n, exact_ising_internal_energy(length, length, t) / n,
            c / n, exact_ising_specific_heat(length, length, t) / n,
        ])
    print(format_table(
        ["T", "U/N (WL)", "U/N (Kaufman)", "C/N (WL)", "C/N (Kaufman)"],
        rows, title=f"{length}x{length} Ising: Wang-Landau vs exact finite-lattice solution",
    ))
    print(f"\ninfinite-lattice T_c (Onsager) = {onsager_critical_temperature():.4f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
