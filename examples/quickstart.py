"""Quickstart: sample a high entropy alloy and compute its thermodynamics.

Runs in ~1 minute. Demonstrates the three core layers of the library:

1. build the NbMoTaW system (lattice + effective pair interactions),
2. canonical Metropolis sampling at one temperature,
3. Wang-Landau density of states -> specific heat at *all* temperatures.

Usage: python examples/quickstart.py

Set ``REPRO_TRACE=quickstart.jsonl`` to capture a telemetry trace (phase
spans, WL iteration events); render it afterwards with
``python -m repro.obs.report quickstart.jsonl``.
"""

import numpy as np

from repro.analysis import transition_temperature, warren_cowley
from repro.analysis.sro import sro_matrix_table
from repro.dos import normalize_ln_g, thermodynamics
from repro.dos.thermo import log_multinomial
from repro.hamiltonians import KB_EV_PER_K, NbMoTaWHamiltonian
from repro.lattice import NBMOTAW, bcc, equiatomic_counts, random_configuration
from repro.obs import Telemetry
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid, MetropolisSampler, WangLandauSampler, drive_into_range
from repro.util.tables import format_table


def main() -> None:
    tel = Telemetry.from_env(run_id="quickstart")

    # ---- 1. the system --------------------------------------------------
    with tel.span("setup"):
        lattice = bcc(3)  # 54-site BCC supercell
        ham = NbMoTaWHamiltonian(lattice)
        counts = equiatomic_counts(ham.n_sites, 4)
        config = random_configuration(ham.n_sites, counts, rng=0)
    print(f"system: {ham!r}")
    print(f"random-alloy energy: {ham.energy(config):+.3f} eV\n")

    # ---- 2. canonical sampling at 600 K ---------------------------------
    temperature = 600.0
    beta = 1.0 / (KB_EV_PER_K * temperature)
    with tel.span("metropolis", temperature=temperature):
        sampler = MetropolisSampler(ham, SwapProposal(), beta, config, rng=1)
        sampler.run_sweeps(100)  # equilibrate
        stats = sampler.run_sweeps(200, record_energy_every=ham.n_sites)
    print(f"Metropolis @ {temperature:.0f} K: <E> = {stats.energies.mean():+.3f} eV, "
          f"acceptance = {sampler.acceptance_rate:.2f}")
    alpha = warren_cowley(lattice, sampler.config, 4)
    print(sro_matrix_table(alpha, NBMOTAW.names))
    print()

    # ---- 3. density of states -> all temperatures at once ---------------
    grid = EnergyGrid.uniform(-11.0, 1.0, 24)
    with tel.span("wang_landau"):
        start = drive_into_range(ham, SwapProposal(), grid, config, rng=2)
        wl = WangLandauSampler(hamiltonian=ham, proposal=SwapProposal(),
                               grid=grid, initial_config=start, rng=3,
                               ln_f_final=5e-3, flatness=0.7)
        result = wl.run(max_steps=3_000_000, telemetry=tel)
    print(f"Wang-Landau: converged={result.converged} after {result.n_steps:,} steps, "
          f"{result.n_iterations} iterations "
          f"({result.counters.out_of_grid:,} out-of-grid rejections)")

    energies = grid.centers[result.visited]
    ln_g = normalize_ln_g(result.masked_ln_g()[result.visited], log_multinomial(counts))
    temps = np.linspace(200.0, 3000.0, 30)
    table = thermodynamics(energies, ln_g, temps, kb=KB_EV_PER_K)
    tc, cmax = transition_temperature(temps, table.specific_heat / (ham.n_sites * KB_EV_PER_K))
    rows = [
        [t, u, c / (ham.n_sites * KB_EV_PER_K)]
        for t, u, c in zip(temps[::3], table.internal_energy[::3], table.specific_heat[::3])
    ]
    print(format_table(["T [K]", "U [eV]", "C/N [k_B]"], rows,
                       title="thermodynamics from one Wang-Landau run"))
    print(f"\norder-disorder transition estimate: T_c ≈ {tc:.0f} K (C/N peak {cmax:.2f} k_B)")

    if tel.enabled:
        print(f"\ntelemetry trace captured (run id {tel.events.run_id}); render with "
              "`python -m repro.obs.report <trace.jsonl>`")
    tel.close()


if __name__ == "__main__":
    main()
