"""Replica-exchange Wang-Landau across energy windows — the parallel core.

Demonstrates the full distributed pipeline at laptop scale:

1. decompose the HEA energy range into overlapping windows,
2. run walker teams per window with inter-window configuration exchanges,
3. stitch the per-window ln g pieces into one global density of states,
4. verify the serial and thread-pool executors produce bit-identical
   results (walker RNG state travels with the walker).

Usage: python examples/distributed_rewl.py
"""

import numpy as np

from repro.experiments.common import estimate_energy_range
from repro.hamiltonians import NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration
from repro.parallel import REWLConfig, REWLDriver, ThreadExecutor
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid
from repro.util.tables import format_table


def run_once(executor=None):
    ham = NbMoTaWHamiltonian(bcc(3), n_shells=1)
    counts = equiatomic_counts(ham.n_sites, 4)
    # Annealed estimate of the reachable range (rigid bounds are far too
    # loose, and unreachable tail bins stall flat-histogram convergence).
    e_lo, e_hi = estimate_energy_range(ham, counts, rng=5, margin=0.03)
    grid = EnergyGrid.uniform(e_lo, e_hi, 28)
    driver = REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: SwapProposal(), grid=grid,
        initial_config=random_configuration(ham.n_sites, counts, rng=0),
        config=REWLConfig(n_windows=3, walkers_per_window=2, overlap=0.6,
                   exchange_interval=1_500, ln_f_final=5e-3, flatness=0.7,
                   seed=7),
        executor=executor,
    )
    return driver.run(max_rounds=2_000)


def main() -> None:
    result = run_once()
    print(f"converged={result.converged} after {result.rounds} rounds "
          f"({result.total_steps:,} total MC steps)")
    rows = [
        [w.index, w.lo_bin, w.hi_bin,
         result.window_iterations[w.index],
         None if w.index >= len(result.exchange_rates) else result.exchange_rates[w.index]]
        for w in result.windows
    ]
    print(format_table(
        ["window", "lo bin", "hi bin", "WL iterations", "exchange rate ->"],
        rows, title="per-window state",
    ))

    stitched = result.stitched()
    print(f"\nstitched ln g: span = {stitched.span:.1f}, "
          f"joint residuals = {np.round(stitched.joint_residuals, 3)}")

    # Executor determinism: same seed, thread pool vs serial.
    with ThreadExecutor(n_workers=3) as pool:
        threaded = run_once(executor=pool)
    identical = all(
        np.array_equal(a, b)
        for a, b in zip(result.window_ln_g, threaded.window_ln_g)
    )
    print(f"thread-pool run bit-identical to serial: {identical}")


if __name__ == "__main__":
    main()
