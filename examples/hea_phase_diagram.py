"""Map the order-disorder behaviour of an HEA from one DoS evaluation.

The workload the paper's introduction motivates: given a refractory HEA,
find where it chemically orders.  One replica-exchange Wang-Landau run
yields the density of states; thermodynamics and short-range order at every
temperature follow by reweighting — no per-temperature re-simulation.

Usage: python examples/hea_phase_diagram.py
"""

import numpy as np

from repro.analysis import transition_temperature, warren_cowley
from repro.dos import normalize_ln_g, reweight_observable, thermodynamics
from repro.experiments.common import estimate_energy_range
from repro.dos.thermo import log_multinomial
from repro.hamiltonians import KB_EV_PER_K, NbMoTaWHamiltonian
from repro.lattice import NBMOTAW, bcc, equiatomic_counts, random_configuration
from repro.parallel import REWLConfig, REWLDriver
from repro.proposals import SwapProposal
from repro.sampling import EnergyGrid, MulticanonicalSampler, drive_into_range
from repro.util.tables import format_table


def main() -> None:
    ham = NbMoTaWHamiltonian(bcc(3))
    lattice = ham.lattice
    counts = equiatomic_counts(ham.n_sites, 4)

    # ---- density of states via REWL -------------------------------------
    e_lo, e_hi = estimate_energy_range(ham, counts, rng=9, margin=0.03)
    grid = EnergyGrid.uniform(e_lo, e_hi, 30)
    driver = REWLDriver(
        hamiltonian=ham, proposal_factory=lambda: SwapProposal(), grid=grid,
        initial_config=random_configuration(ham.n_sites, counts, rng=0),
        config=REWLConfig(n_windows=2, walkers_per_window=1, overlap=0.6,
                   exchange_interval=2_000, ln_f_final=2e-3, flatness=0.7, seed=1),
    )
    res = driver.run(max_rounds=3_000)
    stitched = res.stitched()
    print(f"REWL: converged={res.converged}, ln g span = {stitched.span:.1f} "
          f"(total state count ln = {log_multinomial(counts):.1f})")

    ln_g_full = normalize_ln_g(stitched.ln_g, log_multinomial(counts))

    # ---- microcanonical SRO accumulation --------------------------------
    mo, ta = NBMOTAW.index("Mo"), NBMOTAW.index("Ta")
    walk_ln_g = np.where(stitched.visited, ln_g_full, ln_g_full[stitched.visited].min())
    start = drive_into_range(
        ham, SwapProposal(), grid,
        random_configuration(ham.n_sites, counts, rng=2), rng=3,
    )
    muca = MulticanonicalSampler(
        ham, SwapProposal(), grid, walk_ln_g, start, rng=4,
        observables={"mo_ta": lambda cfg, e: warren_cowley(lattice, cfg, 4)[mo, ta]},
    )
    muca.run(120_000, measure_every=5)
    micro = muca.result().observable_means["mo_ta"]

    # ---- everything vs temperature, from one run ------------------------
    temps = np.linspace(200.0, 3000.0, 25)
    lng_rw = np.where(stitched.visited, ln_g_full, -np.inf)
    tab = thermodynamics(grid.centers[stitched.visited],
                         ln_g_full[stitched.visited], temps, kb=KB_EV_PER_K)
    sro = reweight_observable(grid.centers, lng_rw, micro, temps, kb=KB_EV_PER_K)
    c_per_site = tab.specific_heat / (ham.n_sites * KB_EV_PER_K)
    tc, _ = transition_temperature(temps, c_per_site)

    rows = [
        [t, c, s, a]
        for t, c, s, a in zip(temps, c_per_site,
                              tab.entropy / (ham.n_sites * KB_EV_PER_K), sro)
    ]
    print(format_table(
        ["T [K]", "C/N [k_B]", "S/N [k_B]", "alpha(Mo-Ta)"],
        rows, title="NbMoTaW order-disorder map (one DoS run)",
    ))
    print(f"\norder-disorder transition: T_c ≈ {tc:.0f} K; "
          f"Mo-Ta SRO goes {sro[0]:+.2f} -> {sro[-1]:+.2f} (ordered -> random); "
          f"S/N -> ln 4 = {np.log(4):.2f} at high T")


if __name__ == "__main__":
    main()
