"""Graceful degradation: a chaos campaign that finishes instead of dying.

One REWL window is permanently poisoned (deterministic nan injection into
its ln g), and the campaign supervisor heals around it: guards catch the
corruption, the rollback budget burns, the window is quarantined, the
surviving neighbors are re-paired, and the run completes with an explicit
``degraded`` flag, a per-window disposition table, and a best-effort
stitched density of states with a recorded coverage gap.  Running twice
with the same seeds produces bit-identical output — chaos included.

Usage: python examples/degraded_campaign.py

The fault mix and the resilience policy come from the standard env knobs
when set (as in the CI degraded-smoke job)::

    REPRO_FAULTS="nan=1.0,window=1,seed=0" \\
    REPRO_RESILIENCE="mode=quarantine,rollbacks=1" \\
        python examples/degraded_campaign.py

and default to exactly those values when unset, so the script stands alone.
"""

import numpy as np

from repro.faults import FaultConfig, FaultInjector, faults_from_env
from repro.hamiltonians import IsingHamiltonian
from repro.lattice import square_lattice
from repro.parallel import REWLConfig, REWLDriver, SerialExecutor
from repro.proposals import FlipProposal
from repro.resilience import GuardPolicy, ResilienceConfig, resilience_from_env
from repro.sampling import EnergyGrid
from repro.util.tables import format_table


def run_campaign():
    injector = faults_from_env()
    if injector is None:
        injector = FaultInjector(FaultConfig(nan=1.0, window=1, seed=0))
    resilience = resilience_from_env()
    if resilience is None:
        resilience = ResilienceConfig(
            guards=GuardPolicy(mode="quarantine", max_rollbacks=1))

    ising = IsingHamiltonian(square_lattice(4))
    grid = EnergyGrid.from_levels(ising.energy_levels())
    driver = REWLDriver(
        hamiltonian=ising, proposal_factory=lambda: FlipProposal(),
        grid=grid, initial_config=np.zeros(16, dtype=np.int8),
        config=REWLConfig(n_windows=4, walkers_per_window=1, overlap=0.4,
                          exchange_interval=400, ln_f_final=5e-3, seed=21),
        executor=SerialExecutor(faults=injector, retry_backoff=0.0),
        resilience=resilience,
    )
    return driver.run(max_rounds=300)


def main() -> None:
    result = run_campaign()

    rows = [
        [d["window"], d["disposition"], d["guard_trips"], d["rollbacks"],
         d["reason"] or "-"]
        for d in result.window_dispositions
    ]
    print(format_table(
        ["window", "disposition", "guard trips", "rollbacks", "reason"],
        rows, title=f"campaign {'DEGRADED' if result.degraded else 'complete'}"
    ))

    assert result.degraded, "the poisoned window should degrade the campaign"
    assert result.quarantined, "the poisoned window should be quarantined"

    stitched = result.stitched()  # allow_gaps defaults on for degraded runs
    print(f"\nstitched DoS: segments={stitched.segments} "
          f"coverage_gaps={stitched.coverage_gaps} "
          f"skipped={stitched.skipped} complete={stitched.complete}")
    assert not stitched.complete
    assert stitched.skipped == list(result.quarantined)
    assert stitched.visited.any(), "survivors must still contribute a DoS"

    rerun = run_campaign()
    assert rerun.quarantined == result.quarantined
    again = rerun.stitched()
    assert np.array_equal(again.ln_g, stitched.ln_g), \
        "degraded runs must be bit-identically reproducible"
    print("\nrerun with the same seeds: bit-identical (chaos included)")


if __name__ == "__main__":
    main()
