"""Train a deep-learning MC proposal and watch it accelerate sampling.

The DeepThermo loop in miniature:

1. harvest configurations from a cheap local-swap chain,
2. train a MADE (exact-density) and a VAE proposal on them,
3. compare local vs learned-global kernels on acceptance and
   autocorrelation time at the training temperature.

Usage: python examples/learned_proposal_training.py
"""

import numpy as np

from repro.analysis import effective_sample_size, integrated_autocorrelation_time
from repro.hamiltonians import KB_EV_PER_K, NbMoTaWHamiltonian
from repro.lattice import bcc, equiatomic_counts, random_configuration
from repro.nn import MADE, CategoricalVAE, MADEConfig, VAEConfig
from repro.proposals import MADEProposal, SwapProposal, VAEProposal
from repro.sampling import MetropolisSampler
from repro.training import ProposalTrainer, ReplayBuffer, pretrain_from_chain
from repro.util.tables import format_table


def main() -> None:
    ham = NbMoTaWHamiltonian(bcc(3), n_shells=1)
    counts = equiatomic_counts(ham.n_sites, 4)
    # Near the order-disorder transition — the regime the paper evaluates
    # (deep in the ordered phase no independence proposal can match the
    # frozen target at small training budgets; see EXPERIMENTS.md E5/E10).
    temperature = 3000.0
    beta = 1.0 / (KB_EV_PER_K * temperature)

    # ---- 1+2. harvest and train both model families ---------------------
    models = {}
    for name, model in [
        ("vae", CategoricalVAE(VAEConfig(ham.n_sites, 4, latent_dim=8, hidden=(96, 48)), rng=0)),
        ("made", MADE(MADEConfig(ham.n_sites, 4, hidden=(128,)), rng=1)),
    ]:
        buffer = ReplayBuffer(512, ham.n_sites, 4)
        trainer = ProposalTrainer(model, buffer, lr=2e-3, batch_size=64, rng=2)
        out = pretrain_from_chain(
            ham, SwapProposal(), beta,
            random_configuration(ham.n_sites, counts, rng=3),
            trainer, n_burn_in=5_000, n_harvest=500,
            harvest_interval=2 * ham.n_sites,  # decorrelated harvest
            train_steps=1_200, seed=4,
        )
        print(f"trained {name}: harvest chain acceptance {out['chain_acceptance']:.2f}, "
              f"final loss {out['last_loss']:.2f}")
        models[name] = model

    # ---- 3. head-to-head -------------------------------------------------
    kernels = {
        "swap (local)": SwapProposal(),
        "vae (global)": VAEProposal(models["vae"], n_marginal_samples=16,
                                    composition="repair", logit_temperature=1.5),
        "made (global)": MADEProposal(models["made"], composition="repair",
                                      max_reject_tries=16),
    }
    rows = []
    for name, proposal in kernels.items():
        sampler = MetropolisSampler(
            ham, proposal, beta,
            random_configuration(ham.n_sites, counts, rng=5), rng=6,
        )
        sampler.run(400)
        stats = sampler.run(1_500, record_energy_every=1)
        tau = integrated_autocorrelation_time(stats.energies)
        rows.append([name, stats.acceptance_rate, tau,
                     effective_sample_size(stats.energies)])
    print()
    print(format_table(
        ["kernel", "acceptance", "tau_int [proposals]", "ESS of 1500"],
        rows, title=f"proposal quality at {temperature:.0f} K (NbMoTaW, N={ham.n_sites})",
    ))
    print("\nglobal learned kernels decorrelate in O(1) accepted moves — the "
          "paper's acceleration mechanism.")


if __name__ == "__main__":
    main()
