"""One conditional model serving every replica of a tempering ladder.

DeepThermo-style production runs host many walkers at different
temperatures; training a proposal per walker is wasteful.  This example
trains a single temperature-conditioned MADE on data pooled from two
chains and then drives Metropolis chains at *several* temperatures —
including one never seen in training — with exact conditional densities.

Usage: python examples/conditional_proposal.py
"""

import numpy as np

from repro.hamiltonians import IsingHamiltonian, enumerate_density_of_states
from repro.lattice import one_hot, square_lattice
from repro.nn import Adam, ConditionalMADE, ConditionalMADEConfig
from repro.proposals import ConditionalMADEProposal, FlipProposal
from repro.sampling import MetropolisSampler
from repro.util.tables import format_table


def exact_mean_energy(levels, degens, beta):
    w = np.log(degens) - beta * levels
    w -= w.max()
    p = np.exp(w) / np.exp(w).sum()
    return float(np.dot(p, levels))


def main() -> None:
    ham = IsingHamiltonian(square_lattice(3))
    levels, degens = enumerate_density_of_states(ham)

    # ---- train one model on two temperatures -----------------------------
    model = ConditionalMADE(
        ConditionalMADEConfig(n_sites=9, n_species=2, cond_dim=1, hidden=(64,)), rng=0
    )
    opt = Adam(model.parameters(), lr=5e-3)
    data, conds = [], []
    train_betas = (0.15, 0.45)
    for beta in train_betas:
        chain = MetropolisSampler(ham, FlipProposal(), beta,
                                  np.zeros(9, dtype=np.int8), rng=int(beta * 100))
        chain.run(2_000)

        def collect(s, _k, beta=beta):
            data.append(one_hot(s.config, 2))
            conds.append([beta])

        chain.run(4_000, callback=collect, callback_every=20)
    data, conds = np.stack(data), np.asarray(conds)
    rng = np.random.default_rng(1)
    for _ in range(400):
        idx = rng.integers(0, len(data), 64)
        model.train_step(data[idx], conds[idx], opt)
    print(f"trained one conditional MADE on betas {train_betas}")

    # ---- drive chains at trained AND interpolated temperatures -----------
    rows = []
    for beta in (0.15, 0.30, 0.45):  # 0.30 was never trained on
        prop = ConditionalMADEProposal(
            model, lambda cfg, e, beta=beta: np.array([beta]), composition="free"
        )
        sampler = MetropolisSampler(ham, prop, beta,
                                    np.zeros(9, dtype=np.int8), rng=int(beta * 997))
        sampler.run(500)
        stats = sampler.run(4_000, record_energy_every=2)
        rows.append([
            beta, beta in train_betas, sampler.acceptance_rate,
            stats.energies.mean(), exact_mean_energy(levels, degens, beta),
        ])
    print(format_table(
        ["beta", "trained?", "acceptance", "<E> sampled", "<E> exact"],
        rows, title="one conditional proposal across the ladder (3x3 Ising)",
    ))
    print("\nthe interpolated temperature works without retraining — the "
          "conditioning input generalizes across the ladder.")


if __name__ == "__main__":
    main()
